#include "proto/wire.hpp"

namespace sixdust {
namespace {

constexpr std::uint8_t kProtoIcmp6 = 58;
constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> w, std::size_t off) {
  return static_cast<std::uint16_t>(w[off] << 8 | w[off + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> w, std::size_t off) {
  return static_cast<std::uint32_t>(get16(w, off)) << 16 | get16(w, off + 2);
}

/// Patch a 16-bit checksum field in place.
void set_checksum(std::vector<std::uint8_t>& pkt, std::size_t offset,
                  const Ipv6& src, const Ipv6& dst, std::uint8_t next) {
  pkt[offset] = 0;
  pkt[offset + 1] = 0;
  const std::uint16_t sum = checksum_ipv6(src, dst, next, pkt);
  pkt[offset] = static_cast<std::uint8_t>(sum >> 8);
  pkt[offset + 1] = static_cast<std::uint8_t>(sum);
}

bool checksum_ok(std::span<const std::uint8_t> wire, const Ipv6& src,
                 const Ipv6& dst, std::uint8_t next) {
  // Summing a packet whose checksum field contains the transmitted value
  // yields 0xffff (i.e. ~sum == 0) when intact.
  std::uint32_t acc = 0;
  auto add16 = [&](std::uint16_t v) { acc += v; };
  for (int i = 0; i < 16; i += 2)
    add16(static_cast<std::uint16_t>(src.byte(i) << 8 | src.byte(i + 1)));
  for (int i = 0; i < 16; i += 2)
    add16(static_cast<std::uint16_t>(dst.byte(i) << 8 | dst.byte(i + 1)));
  const auto len = static_cast<std::uint32_t>(wire.size());
  add16(static_cast<std::uint16_t>(len >> 16));
  add16(static_cast<std::uint16_t>(len));
  add16(next);
  for (std::size_t i = 0; i + 1 < wire.size(); i += 2)
    add16(static_cast<std::uint16_t>(wire[i] << 8 | wire[i + 1]));
  if (wire.size() % 2) add16(static_cast<std::uint16_t>(wire.back() << 8));
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc) == 0;
}

}  // namespace

std::uint16_t checksum_ipv6(const Ipv6& src, const Ipv6& dst,
                            std::uint8_t next_header,
                            std::span<const std::uint8_t> data) {
  std::uint32_t acc = 0;
  auto add16 = [&](std::uint16_t v) { acc += v; };
  for (int i = 0; i < 16; i += 2)
    add16(static_cast<std::uint16_t>(src.byte(i) << 8 | src.byte(i + 1)));
  for (int i = 0; i < 16; i += 2)
    add16(static_cast<std::uint16_t>(dst.byte(i) << 8 | dst.byte(i + 1)));
  const auto len = static_cast<std::uint32_t>(data.size());
  add16(static_cast<std::uint16_t>(len >> 16));
  add16(static_cast<std::uint16_t>(len));
  add16(next_header);
  for (std::size_t i = 0; i + 1 < data.size(); i += 2)
    add16(static_cast<std::uint16_t>(data[i] << 8 | data[i + 1]));
  if (data.size() % 2) add16(static_cast<std::uint16_t>(data.back() << 8));
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  const auto sum = static_cast<std::uint16_t>(~acc);
  return sum == 0 ? 0xffff : sum;  // 0 is transmitted as all-ones
}

// --- ICMPv6 -----------------------------------------------------------------

std::vector<std::uint8_t> encode_icmp6(const Icmp6Packet& pkt,
                                       const Ipv6& src, const Ipv6& dst) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + pkt.payload.size());
  out.push_back(pkt.type);
  out.push_back(pkt.code);
  put16(out, 0);  // checksum placeholder
  put16(out, pkt.identifier);
  put16(out, pkt.sequence);
  out.insert(out.end(), pkt.payload.begin(), pkt.payload.end());
  set_checksum(out, 2, src, dst, kProtoIcmp6);
  return out;
}

std::optional<Icmp6Packet> decode_icmp6(std::span<const std::uint8_t> wire,
                                        const Ipv6& src, const Ipv6& dst) {
  if (wire.size() < 8) return std::nullopt;
  if (!checksum_ok(wire, src, dst, kProtoIcmp6)) return std::nullopt;
  Icmp6Packet pkt;
  pkt.type = wire[0];
  pkt.code = wire[1];
  pkt.identifier = get16(wire, 4);
  pkt.sequence = get16(wire, 6);
  pkt.payload.assign(wire.begin() + 8, wire.end());
  return pkt;
}

Icmp6Packet make_echo_request(std::uint16_t id, std::uint16_t seq,
                              std::uint16_t payload_size) {
  Icmp6Packet pkt;
  pkt.type = kIcmp6EchoRequest;
  pkt.identifier = id;
  pkt.sequence = seq;
  pkt.payload.resize(payload_size);
  for (std::size_t i = 0; i < pkt.payload.size(); ++i)
    pkt.payload[i] = static_cast<std::uint8_t>(i);
  return pkt;
}

Icmp6Packet make_packet_too_big(std::uint32_t mtu) {
  Icmp6Packet pkt;
  pkt.type = kIcmp6PacketTooBig;
  pkt.code = 0;
  // RFC 4443: the 32-bit MTU occupies the former id/seq words.
  pkt.identifier = static_cast<std::uint16_t>(mtu >> 16);
  pkt.sequence = static_cast<std::uint16_t>(mtu);
  return pkt;
}

std::optional<std::uint32_t> packet_too_big_mtu(const Icmp6Packet& pkt) {
  if (pkt.type != kIcmp6PacketTooBig) return std::nullopt;
  return static_cast<std::uint32_t>(pkt.identifier) << 16 | pkt.sequence;
}

// --- TCP --------------------------------------------------------------------

std::vector<std::uint8_t> encode_tcp(const TcpSegment& seg, const Ipv6& src,
                                     const Ipv6& dst) {
  std::vector<std::uint8_t> options;
  if (seg.mss) {
    options.push_back(2);
    options.push_back(4);
    put16(options, *seg.mss);
  }
  if (seg.sack_permitted) {
    options.push_back(4);
    options.push_back(2);
  }
  if (seg.timestamps) {
    options.push_back(8);
    options.push_back(10);
    put32(options, seg.timestamps->first);
    put32(options, seg.timestamps->second);
  }
  if (seg.window_scale) {
    options.push_back(3);
    options.push_back(3);
    options.push_back(*seg.window_scale);
  }
  while (options.size() % 4) options.push_back(1);  // NOP padding

  std::vector<std::uint8_t> out;
  out.reserve(20 + options.size());
  put16(out, seg.src_port);
  put16(out, seg.dst_port);
  put32(out, seg.seq);
  put32(out, seg.ack);
  const auto data_offset = static_cast<std::uint8_t>((20 + options.size()) / 4);
  out.push_back(static_cast<std::uint8_t>(data_offset << 4));
  out.push_back(seg.flags);
  put16(out, seg.window);
  put16(out, 0);  // checksum
  put16(out, 0);  // urgent pointer
  out.insert(out.end(), options.begin(), options.end());
  set_checksum(out, 16, src, dst, kProtoTcp);
  return out;
}

std::optional<TcpSegment> decode_tcp(std::span<const std::uint8_t> wire,
                                     const Ipv6& src, const Ipv6& dst) {
  if (wire.size() < 20) return std::nullopt;
  if (!checksum_ok(wire, src, dst, kProtoTcp)) return std::nullopt;
  TcpSegment seg;
  seg.src_port = get16(wire, 0);
  seg.dst_port = get16(wire, 2);
  seg.seq = get32(wire, 4);
  seg.ack = get32(wire, 8);
  const std::size_t header_len = static_cast<std::size_t>(wire[12] >> 4) * 4;
  if (header_len < 20 || header_len > wire.size()) return std::nullopt;
  seg.flags = wire[13];
  seg.window = get16(wire, 14);
  std::size_t off = 20;
  while (off < header_len) {
    const std::uint8_t kind = wire[off];
    if (kind == 0) break;  // end of options
    if (kind == 1) {       // NOP
      ++off;
      continue;
    }
    if (off + 1 >= header_len) return std::nullopt;
    const std::uint8_t len = wire[off + 1];
    if (len < 2 || off + len > header_len) return std::nullopt;
    switch (kind) {
      case 2:
        if (len != 4) return std::nullopt;
        seg.mss = get16(wire, off + 2);
        break;
      case 3:
        if (len != 3) return std::nullopt;
        seg.window_scale = wire[off + 2];
        break;
      case 4:
        if (len != 2) return std::nullopt;
        seg.sack_permitted = true;
        break;
      case 8:
        if (len != 10) return std::nullopt;
        seg.timestamps = {get32(wire, off + 2), get32(wire, off + 6)};
        break;
      default:
        break;  // unknown options are skipped
    }
    off += len;
  }
  return seg;
}

std::string tcp_options_text(std::span<const std::uint8_t> wire) {
  std::string text;
  if (wire.size() < 20) return text;
  const std::size_t header_len = static_cast<std::size_t>(wire[12] >> 4) * 4;
  std::size_t off = 20;
  while (off < header_len && off < wire.size()) {
    const std::uint8_t kind = wire[off];
    if (kind == 0) break;
    if (kind == 1) {
      text += 'N';
      ++off;
      continue;
    }
    if (off + 1 >= header_len) break;
    switch (kind) {
      case 2: text += 'M'; break;
      case 3: text += 'W'; break;
      case 4: text += 'S'; break;
      case 8: text += 'T'; break;
      default: text += 'E'; break;
    }
    const std::uint8_t len = wire[off + 1];
    if (len < 2) break;
    off += len;
  }
  return text;
}

TcpSegment segment_from_features(const TcpFeatures& features,
                                 std::uint16_t src_port) {
  TcpSegment seg;
  seg.src_port = src_port;
  seg.flags = kTcpFlagSyn | kTcpFlagAck;
  seg.window = features.window;
  // Emit options in the order encoded by the options string.
  for (char c : features.options_text) {
    switch (c) {
      case 'M': seg.mss = features.mss; break;
      case 'W': seg.window_scale = features.window_scale; break;
      case 'S': seg.sack_permitted = true; break;
      case 'T': seg.timestamps = {0, 0}; break;
      default: break;
    }
  }
  if (!seg.mss) seg.mss = features.mss;
  if (!seg.window_scale) seg.window_scale = features.window_scale;
  return seg;
}

TcpFeatures features_from_segment(const TcpSegment& seg,
                                  std::span<const std::uint8_t> wire,
                                  std::uint8_t hop_limit) {
  TcpFeatures f;
  f.window = seg.window;
  f.window_scale = seg.window_scale.value_or(0);
  f.mss = seg.mss.value_or(0);
  f.options_text = tcp_options_text(wire);
  f.ittl = ittl_from_hop_limit(hop_limit);
  return f;
}

// --- UDP --------------------------------------------------------------------

std::vector<std::uint8_t> encode_udp(const UdpDatagram& dgram,
                                     const Ipv6& src, const Ipv6& dst) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + dgram.payload.size());
  put16(out, dgram.src_port);
  put16(out, dgram.dst_port);
  put16(out, static_cast<std::uint16_t>(8 + dgram.payload.size()));
  put16(out, 0);  // checksum
  out.insert(out.end(), dgram.payload.begin(), dgram.payload.end());
  set_checksum(out, 6, src, dst, kProtoUdp);
  return out;
}

std::optional<UdpDatagram> decode_udp(std::span<const std::uint8_t> wire,
                                      const Ipv6& src, const Ipv6& dst) {
  if (wire.size() < 8) return std::nullopt;
  if (get16(wire, 4) != wire.size()) return std::nullopt;
  if (!checksum_ok(wire, src, dst, kProtoUdp)) return std::nullopt;
  UdpDatagram dgram;
  dgram.src_port = get16(wire, 0);
  dgram.dst_port = get16(wire, 2);
  dgram.payload.assign(wire.begin() + 8, wire.end());
  return dgram;
}

}  // namespace sixdust
