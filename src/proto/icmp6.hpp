#pragma once

#include <cstdint>

namespace sixdust {

/// ICMPv6 echo request parameters. `payload_size` matters for the Too Big
/// Trick (Sec. 5.1), which sends 1300 B echoes — above the 1280 B IPv6
/// minimum MTU — and then lowers the target's PMTU with a Packet Too Big.
struct IcmpEchoRequest {
  std::uint16_t payload_size = 8;
};

struct IcmpEchoReply {
  std::uint16_t payload_size = 8;
  /// True when the reply arrived as IPv6 fragments — i.e. the responder's
  /// PMTU cache for our vantage point is below the reply size.
  bool fragmented = false;
  std::uint8_t hop_limit = 64;
};

/// ICMPv6 type 2 — sent by the prober during the TBT to install a reduced
/// PMTU (RFC 8201 path MTU discovery) on the target.
struct IcmpPacketTooBig {
  std::uint16_t mtu = 1280;
};

}  // namespace sixdust
