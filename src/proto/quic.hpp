#pragma once

#include <cstdint>

namespace sixdust {

/// QUIC (UDP/443) probe model. The hitlist's ZMapv6 QUIC module elicits a
/// Version Negotiation packet by sending an Initial with a reserved
/// version; a response of any kind counts as QUIC support.
struct QuicProbe {
  std::uint32_t version = 0x1a2a3a4a;  // greased version forcing negotiation
};

struct QuicReply {
  bool version_negotiation = true;
  std::uint32_t supported_version = 0x00000001;  // QUIC v1 (RFC 9000)
};

}  // namespace sixdust
