#include "traceroute/yarrp.hpp"

#include <unordered_set>

#include "scanner/cyclic.hpp"

namespace sixdust {

Yarrp::TraceResult Yarrp::trace(const World& world,
                                std::span<const Ipv6> targets,
                                ScanDate date) const {
  TraceResult result;
  std::unordered_set<Ipv6, Ipv6Hasher> seen;

  // Budget-limited sample in permuted order (stateless, like Yarrp's
  // random probing order).
  CyclicPermutation perm(targets.empty() ? 1 : targets.size(),
                         hash_combine(cfg_.seed, date.index));
  const std::size_t count =
      targets.size() < cfg_.target_budget ? targets.size() : cfg_.target_budget;

  for (std::size_t k = 0; k < count; ++k) {
    const Ipv6& t = targets[perm.next()];
    ++result.targets_traced;
    const auto path = world.path_to(t, date);

    // Yarrp sends one probe per TTL in randomized order; we account for
    // the probes and collect the responsive hops.
    result.probes_sent += static_cast<std::uint64_t>(
        path.size() < static_cast<std::size_t>(cfg_.max_ttl)
            ? path.size()
            : static_cast<std::size_t>(cfg_.max_ttl));

    const World::Hop* last_responsive = nullptr;
    bool target_responded = false;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const auto& hop = path[i];
      if (!hop.responds) continue;
      const bool is_target = i + 1 == path.size();
      if (is_target) {
        target_responded = true;
      } else {
        last_responsive = &hop;
      }
      if (seen.insert(hop.addr).second)
        result.responsive_hops.push_back(hop.addr);
    }
    if (!target_responded && last_responsive != nullptr)
      result.last_hops_unreachable.push_back(last_responsive->addr);
  }
  return result;
}

}  // namespace sixdust
