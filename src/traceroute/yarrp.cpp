#include "traceroute/yarrp.hpp"

#include <unordered_set>

#include "core/parallel.hpp"
#include "obs/trace.hpp"
#include "scanner/cyclic.hpp"

namespace sixdust {

namespace {

void trace_run_span(MetricsRegistry* reg, ScanDate date,
                    const Yarrp::TraceResult& r) {
  trace_span(reg, "traceroute.run", SpanCat::kTraceroute)
      .attr("scan", date.index)
      .attr("targets", r.targets_traced)
      .attr("probes", r.probes_sent)
      .attr("hops", static_cast<std::uint64_t>(r.responsive_hops.size()))
      .attr("gaps",
            static_cast<std::uint64_t>(r.last_hops_unreachable.size()));
}

}  // namespace

void Yarrp::init_metrics() {
  MetricsRegistry* reg = cfg_.metrics;
  if (reg == nullptr) return;
  m_runs_ = &reg->counter("traceroute.runs", Stability::kStable);
  m_targets_ = &reg->counter("traceroute.targets_traced", Stability::kStable);
  m_probes_ = &reg->counter("traceroute.probes_sent", Stability::kStable);
  m_hops_ = &reg->counter("traceroute.hops_discovered", Stability::kStable);
  m_gaps_ = &reg->counter("traceroute.gaps", Stability::kStable);
}

void Yarrp::record_run(const TraceResult& r) const {
  if (m_runs_ == nullptr) return;
  m_runs_->inc();
  m_targets_->add(r.targets_traced);
  m_probes_->add(r.probes_sent);
  m_hops_->add(r.responsive_hops.size());
  m_gaps_->add(r.last_hops_unreachable.size());
}

void Yarrp::trace_slice(const World& world, std::span<const Ipv6> sample,
                        ScanDate date, TraceResult& out) const {
  std::unordered_set<Ipv6, Ipv6Hasher> seen;
  for (const Ipv6& t : sample) {
    ++out.targets_traced;
    const auto path = world.path_to(t, date);

    // Yarrp sends one probe per TTL in randomized order; we account for
    // the probes and collect the responsive hops.
    out.probes_sent += static_cast<std::uint64_t>(
        path.size() < static_cast<std::size_t>(cfg_.max_ttl)
            ? path.size()
            : static_cast<std::size_t>(cfg_.max_ttl));

    const World::Hop* last_responsive = nullptr;
    bool target_responded = false;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const auto& hop = path[i];
      if (!hop.responds) continue;
      const bool is_target = i + 1 == path.size();
      if (is_target) {
        target_responded = true;
      } else {
        last_responsive = &hop;
      }
      if (seen.insert(hop.addr).second) out.responsive_hops.push_back(hop.addr);
    }
    if (!target_responded && last_responsive != nullptr)
      out.last_hops_unreachable.push_back(last_responsive->addr);
  }
}

Yarrp::TraceResult Yarrp::trace(const World& world,
                                std::span<const Ipv6> targets,
                                ScanDate date) const {
  TraceResult result = run(world, targets, date);
  finish_run(date, result);
  return result;
}

void Yarrp::finish_run(ScanDate date, const TraceResult& r) const {
  record_run(r);
  trace_run_span(cfg_.metrics, date, r);
}

Yarrp::TraceResult Yarrp::run(const World& world,
                              std::span<const Ipv6> targets,
                              ScanDate date) const {
  // Budget-limited sample in permuted order (stateless, like Yarrp's
  // random probing order). Drawing the sample is a cheap permutation
  // walk; only the tracing itself is worth parallelizing.
  CyclicPermutation perm(targets.empty() ? 1 : targets.size(),
                         hash_combine(cfg_.seed, date.index));
  const std::size_t count =
      targets.size() < cfg_.target_budget ? targets.size() : cfg_.target_budget;
  std::vector<Ipv6> sample;
  sample.reserve(count);
  for (std::size_t k = 0; k < count; ++k) sample.push_back(targets[perm.next()]);

  ThreadPool* pool = pool_.get();
  const std::size_t chunks = parallel_chunks(pool, count);
  if (chunks <= 1) {
    TraceResult result;
    trace_slice(world, sample, date, result);
    return result;
  }

  // Each slice dedups its own hops in first-seen order; merging the
  // slices in slice order with a global first-seen dedup reconstructs the
  // sequential discovery order exactly (a hop's first occurrence lives in
  // the earliest slice that saw it).
  auto parts = ordered_map<TraceResult>(pool, chunks, [&](std::size_t c) {
    const auto [lo, hi] = chunk_range(count, chunks, c);
    TraceResult local;
    trace_slice(world,
                std::span<const Ipv6>(sample).subspan(lo, hi - lo), date,
                local);
    return local;
  });

  TraceResult result;
  std::unordered_set<Ipv6, Ipv6Hasher> seen;
  for (TraceResult& part : parts) {
    result.targets_traced += part.targets_traced;
    result.probes_sent += part.probes_sent;
    for (const Ipv6& hop : part.responsive_hops)
      if (seen.insert(hop).second) result.responsive_hops.push_back(hop);
    result.last_hops_unreachable.insert(
        result.last_hops_unreachable.end(),
        part.last_hops_unreachable.begin(), part.last_hops_unreachable.end());
  }
  return result;
}

}  // namespace sixdust
