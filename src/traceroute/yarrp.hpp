#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "topo/world.hpp"

namespace sixdust {

/// Yarrp-style randomized high-speed traceroute. Unlike classic traceroute,
/// Yarrp probes (target, TTL) pairs in a stateless random permutation and
/// reconstructs paths afterwards. The hitlist service runs it against every
/// scan target to harvest router addresses as new input — and this harvest
/// of rotating last-hop addresses inside censored networks is what fed the
/// GFW spike (paper Sec. 4.2).
class Yarrp {
 public:
  struct Config {
    std::uint64_t seed = 9;
    int max_ttl = 16;
    /// Per-scan probe budget: at most this many *targets* are traced
    /// (the real service's multi-day scan runtime translates to a bounded
    /// traceroute rate).
    std::size_t target_budget = 20000;
    /// Tracer threads: 0 = hardware concurrency, 1 = sequential. Results
    /// are merged in slice order with first-seen dedup, so any thread
    /// count reproduces the sequential hop order exactly.
    unsigned threads = 1;
    /// Trace telemetry sink (null = no metrics): targets, probes, hops
    /// discovered, and gaps (traces whose target never answered). Stable.
    MetricsRegistry* metrics = nullptr;
  };

  struct TraceResult {
    /// Every responsive hop address discovered, deduplicated, in order of
    /// first discovery.
    std::vector<Ipv6> responsive_hops;
    /// Last responsive hop per traced target that did not itself respond.
    std::vector<Ipv6> last_hops_unreachable;
    std::size_t targets_traced = 0;
    std::uint64_t probes_sent = 0;
  };

  explicit Yarrp(Config cfg)
      : cfg_(cfg), pool_(ThreadPool::create(cfg.threads)) {
    init_metrics();
  }

  /// Share an executor with the other probe stages (null = sequential).
  void set_pool(std::shared_ptr<ThreadPool> pool) { pool_ = std::move(pool); }

  /// Trace a sample of `targets` (budget-limited, deterministic sample).
  [[nodiscard]] TraceResult trace(const World& world,
                                  std::span<const Ipv6> targets,
                                  ScanDate date) const;

  /// Pure compute half of trace(): sample + trace + deterministic merge,
  /// without the run counters or the stable traceroute.run span. The
  /// pipeline's yarrp tile runs this concurrently with the scan lanes,
  /// then calls finish_run() at the barrier — after the scan-phase clock
  /// advance — so the span opens at the same simulated instant as the
  /// sequential path's.
  [[nodiscard]] TraceResult run(const World& world,
                                std::span<const Ipv6> targets,
                                ScanDate date) const;

  /// Record the run counters and emit the stable traceroute.run span.
  /// trace() == run() + finish_run().
  void finish_run(ScanDate date, const TraceResult& r) const;

 private:
  /// Trace `sample` in order, appending to `out` and deduplicating hops
  /// against out.responsive_hops only (local first-seen order).
  void trace_slice(const World& world, std::span<const Ipv6> sample,
                   ScanDate date, TraceResult& out) const;

  void init_metrics();
  void record_run(const TraceResult& r) const;

  Config cfg_;
  std::shared_ptr<ThreadPool> pool_;

  Counter* m_runs_ = nullptr;
  Counter* m_targets_ = nullptr;
  Counter* m_probes_ = nullptr;
  Counter* m_hops_ = nullptr;
  Counter* m_gaps_ = nullptr;
};

}  // namespace sixdust
