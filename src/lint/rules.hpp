#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace sixdust::lint {

enum class Severity : std::uint8_t { kError, kWarning };

[[nodiscard]] std::string_view severity_name(Severity s);

/// Static description of one rule — the row rendered by --list-rules and
/// DESIGN.md §14's rule table.
struct RuleInfo {
  std::string_view id;
  Severity severity = Severity::kError;
  std::string_view summary;
  std::string_view fixit;
};

/// A rule violation before annotation matching (file and allow state are
/// attached by the engine).
struct RawFinding {
  std::string_view rule;
  std::size_t line = 0;
  std::string message;
};

/// One MetricsRegistry registration call site, recovered statically. The
/// `prefix` is the longest leading name text known at the call site (a
/// whole literal, or a literal reached through one local
/// `name = "lit" + ...` assignment); `exact` means the prefix IS the full
/// name. Stability reflects the explicit argument: "stable", "volatile",
/// "expr" (passed through a variable), or "default" (argument omitted).
struct RegSite {
  std::size_t line = 0;
  std::string kind;       // counter | gauge | histogram
  std::string prefix;
  bool exact = false;
  bool has_stability = false;
  std::string stability;  // stable | volatile | expr | default
};

/// Scan a token stream for registration call sites (`.counter(`,
/// `->gauge(`, ...). Shared by the observability rules and the
/// stable-name manifest extractor.
[[nodiscard]] std::vector<RegSite> scan_registrations(const TokenStream& ts);

/// Names declared in `ts` with an `unordered_*` type (variables, members,
/// parameters) — the iteration targets det-unordered-iter watches. The
/// engine feeds a .cpp file its companion header's names as well.
[[nodiscard]] std::vector<std::string> collect_unordered_names(
    const TokenStream& ts);

/// Per-file context handed to each rule's matcher.
struct FileCtx {
  std::string_view path;          // repo-relative, '/'-separated
  const TokenStream* ts = nullptr;
  const std::vector<std::string>* extra_unordered = nullptr;
  std::vector<RawFinding>* out = nullptr;

  void emit(std::string_view rule, std::size_t line, std::string message) {
    out->push_back({rule, line, std::move(message)});
  }
};

struct RuleDef {
  RuleInfo info;
  bool (*in_scope)(std::string_view path);
  void (*run)(FileCtx&);
};

/// The rule table. Order is the reporting order for same-line findings.
[[nodiscard]] const std::vector<RuleDef>& rules();

/// Info rows only (adds the engine-level rules that have no per-file
/// matcher: obs-manifest, lint-annotation, lint-unused-allow).
[[nodiscard]] const std::vector<RuleInfo>& rule_table();

}  // namespace sixdust::lint
