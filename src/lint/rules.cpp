#include "lint/rules.hpp"

#include <algorithm>
#include <map>

namespace sixdust::lint {

namespace {

using Toks = std::vector<Tok>;

[[nodiscard]] bool is_punct(const Tok& t, std::string_view glyph) {
  return t.kind == TokKind::kPunct && t.text == glyph;
}

[[nodiscard]] bool is_ident(const Tok& t, std::string_view name) {
  return t.kind == TokKind::kIdent && t.text == name;
}

[[nodiscard]] bool member_access_before(const Toks& toks, std::size_t i) {
  return i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
}

/// Index of the ')' matching the '(' at `open`; toks.size() when
/// unbalanced (truncated file) — callers treat that as "no match".
[[nodiscard]] std::size_t match_paren(const Toks& toks, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

[[nodiscard]] bool path_starts_with(std::string_view path,
                                    std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

// ---- scope predicates ------------------------------------------------

bool scope_stable_paths(std::string_view path) {
  // Determinism contracts bind everything that can feed stable output:
  // the library and the CLIs. Tests may use wall clocks for timeouts.
  return path_starts_with(path, "src/") || path_starts_with(path, "tools/");
}

bool scope_src_tools(std::string_view path) {
  return path_starts_with(path, "src/") || path_starts_with(path, "tools/");
}

bool scope_everywhere(std::string_view path) {
  (void)path;
  return true;
}

bool scope_raw_thread(std::string_view path) {
  // The pool implementation is the one sanctioned owner of raw threads;
  // everything else either runs on the shared pool or carries an allow.
  if (path_starts_with(path, "src/core/thread_pool")) return false;
  return scope_src_tools(path);
}

bool scope_ordered_atomics(std::string_view path) {
  return path_starts_with(path, "src/core/") ||
         path_starts_with(path, "src/serve/") ||
         path_starts_with(path, "src/obs/");
}

// ---- determinism rules -----------------------------------------------

constexpr std::string_view kWallclockTypes[] = {
    "system_clock", "steady_clock", "high_resolution_clock", "random_device"};
constexpr std::string_view kWallclockCalls[] = {
    "time",      "clock",        "rand",      "srand",  "getenv",
    "localtime", "gettimeofday", "clock_gettime", "gmtime", "mktime"};

void run_det_wallclock(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool is_type =
        std::find(std::begin(kWallclockTypes), std::end(kWallclockTypes),
                  t.text) != std::end(kWallclockTypes);
    if (is_type) {
      ctx.emit("det-wallclock", t.line,
               "nondeterministic source '" + std::string(t.text) +
                   "' in a stable-path TU");
      continue;
    }
    const bool is_call =
        std::find(std::begin(kWallclockCalls), std::end(kWallclockCalls),
                  t.text) != std::end(kWallclockCalls);
    if (is_call && i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        !member_access_before(toks, i)) {
      ctx.emit("det-wallclock", t.line,
               "call to '" + std::string(t.text) +
                   "()' in a stable-path TU");
    }
  }
}

void run_det_unordered_iter(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  std::vector<std::string> names = collect_unordered_names(*ctx.ts);
  if (ctx.extra_unordered != nullptr)
    names.insert(names.end(), ctx.extra_unordered->begin(),
                 ctx.extra_unordered->end());
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close == toks.size()) continue;
    // The range-for colon sits at nesting depth 1 relative to the for's
    // own parenthesis ("::" lexes as one token, so ":" is unambiguous).
    std::size_t colon = 0;
    std::size_t depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
          is_punct(toks[j], "{"))
        ++depth;
      else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
               is_punct(toks[j], "}"))
        --depth;
      else if (depth == 1 && is_punct(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      const bool by_type = toks[j].text.rfind("unordered_", 0) == 0;
      bool by_name =
          std::find(names.begin(), names.end(), toks[j].text) != names.end();
      // A name match through member access (`entry.responsive`) refers to
      // some other object's field, not the unordered local whose name it
      // happens to share; only `this->` keeps the match.
      if (by_name && j > colon + 1 &&
          (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->")) &&
          !(j >= 2 && is_ident(toks[j - 2], "this")))
        by_name = false;
      if (by_type || by_name) {
        ctx.emit("det-unordered-iter", toks[i].line,
                 "range-for over unordered container '" +
                     std::string(toks[j].text) +
                     "' — iteration order is not deterministic");
        break;
      }
    }
  }
}

void run_det_pointer_io(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == TokKind::kString &&
        // sixdust-lint: allow(det-pointer-io) — the matcher's own needle
        t.text.find("%p") != std::string_view::npos) {
      ctx.emit("det-pointer-io", t.line,
               // sixdust-lint: allow(det-pointer-io) — diagnostic text
               "format string prints a pointer value (%p)");
      continue;
    }
    if (is_ident(t, "hash") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "<")) {
      std::size_t depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        else if (is_punct(toks[j], ">") && --depth == 0) break;
        else if (is_punct(toks[j], "*")) {
          ctx.emit("det-pointer-io", t.line,
                   "std::hash over a pointer type — pointer values vary "
                   "run to run");
          break;
        }
      }
    }
  }
}

// ---- observability rules ---------------------------------------------

void run_obs_stability_arg(FileCtx& ctx) {
  for (const RegSite& site : scan_registrations(*ctx.ts)) {
    if (site.has_stability) continue;
    std::string message = "MetricsRegistry::" + site.kind +
                          "() relies on the default stability";
    if (!site.prefix.empty())
      message += " (name '" + site.prefix + (site.exact ? "')" : "…')");
    ctx.emit("obs-stability-arg", site.line, std::move(message));
  }
}

constexpr std::string_view kVolatileNamespaces[] = {"serve.", "pool.",
                                                    "pipeline."};

void run_obs_volatile_ns(FileCtx& ctx) {
  for (const RegSite& site : scan_registrations(*ctx.ts)) {
    const bool watched =
        std::any_of(std::begin(kVolatileNamespaces),
                    std::end(kVolatileNamespaces), [&](std::string_view ns) {
                      return site.prefix.rfind(ns, 0) == 0;
                    });
    if (!watched || site.stability == "volatile") continue;
    ctx.emit("obs-volatile-ns", site.line,
             "metric '" + site.prefix + (site.exact ? "'" : "…'") +
                 "' is in a volatile namespace but is not registered "
                 "Stability::kVolatile");
  }
}

// ---- concurrency rules -----------------------------------------------

void run_conc_raw_thread(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (!(is_ident(toks[i], "thread") || is_ident(toks[i], "jthread")))
      continue;
    if (!is_punct(toks[i - 1], "::") || !is_ident(toks[i - 2], "std"))
      continue;
    // std::thread::hardware_concurrency() queries, it does not spawn.
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "::")) continue;
    ctx.emit("conc-raw-thread", toks[i].line,
             "raw std::" + std::string(toks[i].text) +
                 " outside the thread-pool allowlist");
  }
}

void run_conc_detach(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (is_ident(toks[i], "detach") && member_access_before(toks, i) &&
        is_punct(toks[i + 1], "("))
      ctx.emit("conc-detach", toks[i].line,
               "detached thread — nothing joins it at shutdown");
  }
}

void run_conc_bare_lock(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const bool lockish = is_ident(toks[i], "lock") ||
                         is_ident(toks[i], "unlock") ||
                         is_ident(toks[i], "try_lock");
    if (lockish && member_access_before(toks, i) &&
        is_punct(toks[i + 1], "("))
      ctx.emit("conc-bare-lock", toks[i].line,
               "bare ." + std::string(toks[i].text) +
                   "() — lock lifetime is not scope-tied");
  }
}

constexpr std::string_view kAtomicOps[] = {
    "load",          "store",        "exchange",
    "fetch_add",     "fetch_sub",    "fetch_or",
    "fetch_and",     "fetch_xor",    "compare_exchange_weak",
    "compare_exchange_strong"};

void run_conc_memory_order(FileCtx& ctx) {
  const Toks& toks = ctx.ts->toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (std::find(std::begin(kAtomicOps), std::end(kAtomicOps),
                  toks[i].text) == std::end(kAtomicOps))
      continue;
    if (!member_access_before(toks, i) || !is_punct(toks[i + 1], "("))
      continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close == toks.size()) continue;
    bool explicit_order = false;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.rfind("memory_order", 0) == 0) {
        explicit_order = true;
        break;
      }
    }
    if (!explicit_order)
      ctx.emit("conc-memory-order", toks[i].line,
               "atomic ." + std::string(toks[i].text) +
                   "() without an explicit memory order");
  }
}

// ---- the table -------------------------------------------------------

const std::vector<RuleDef>& rule_defs() {
  static const std::vector<RuleDef> kRules = {
      {{"det-wallclock", Severity::kError,
        "no wall clocks / system entropy / environment reads in "
        "stable-path TUs (src/, tools/)",
        "derive time from the simulated clock (scan_duration pacing, "
        "TraceRecorder sim time) and randomness from the seeded rng; "
        "annotate genuinely volatile uses"},
       scope_stable_paths,
       run_det_wallclock},
      {{"det-unordered-iter", Severity::kError,
        "no range-for over std::unordered_* containers in stable-path "
        "TUs — bucket order varies by libstdc++ version and seed",
        "copy keys to a vector and sort, iterate an index vector, or "
        "switch to std::map; annotate only order-independent folds"},
       scope_stable_paths,
       run_det_unordered_iter},
      {{"det-pointer-io", Severity::kError,
        // sixdust-lint: allow(det-pointer-io) — the rule's own summary
        "no pointer-value printing (%p) or pointer hashing feeding "
        "stable output",
        "print or hash a simulation-stable id (index, name, address "
        "value) instead of an object's location"},
       scope_stable_paths,
       run_det_pointer_io},
      {{"obs-stability-arg", Severity::kError,
        "every MetricsRegistry registration passes an explicit "
        "Stability:: argument",
        "state Stability::kStable or Stability::kVolatile at the call "
        "site — the default hides the determinism contract"},
       scope_src_tools,
       run_obs_stability_arg},
      {{"obs-volatile-ns", Severity::kError,
        "serve.* / pool.* / pipeline.* metrics must be "
        "Stability::kVolatile — they describe execution, not the "
        "simulation",
        "register with Stability::kVolatile; if the value really is a "
        "pure function of the seed it belongs in another namespace"},
       scope_src_tools,
       run_obs_volatile_ns},
      {{"conc-raw-thread", Severity::kError,
        "no raw std::thread outside core/thread_pool — work runs on the "
        "shared pool",
        "submit to core::ThreadPool (caller participates, nested-safe); "
        "annotate sanctioned daemon/loadgen lanes"},
       scope_raw_thread,
       run_conc_raw_thread},
      {{"conc-detach", Severity::kError,
        "no std::thread::detach() anywhere",
        "keep the handle and join it on the shutdown path"},
       scope_everywhere,
       run_conc_detach},
      {{"conc-bare-lock", Severity::kError,
        "no bare .lock()/.unlock()/.try_lock() — RAII guards only",
        "use std::lock_guard, std::scoped_lock, or std::unique_lock"},
       scope_everywhere,
       run_conc_bare_lock},
      {{"conc-memory-order", Severity::kError,
        "atomics in src/core/, src/serve/, src/obs/ state their memory "
        "order explicitly",
        "say memory_order_relaxed / acquire / release / acq_rel — the "
        "seq_cst default hides the synchronization design"},
       scope_ordered_atomics,
       run_conc_memory_order},
  };
  return kRules;
}

}  // namespace

std::string_view severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::vector<RegSite> scan_registrations(const TokenStream& ts) {
  const Toks& toks = ts.toks;

  // Pass 1: local `name = "literal" + ...` assignments, so prefix-built
  // names (`prefix = "pipeline." + name_`) still resolve to a leading
  // literal at the registration site.
  std::map<std::string_view, std::string_view> prefix_vars;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "="))
      continue;
    if (i + 2 < toks.size() && is_punct(toks[i + 2], "=")) continue;  // ==
    for (std::size_t j = i + 2; j < toks.size() && j < i + 10; ++j) {
      const Tok& t = toks[j];
      if (is_ident(t, "std") || is_ident(t, "string") ||
          is_punct(t, "::") || is_punct(t, "("))
        continue;
      if (t.kind == TokKind::kString) prefix_vars[toks[i].text] = t.text;
      break;
    }
  }

  // Pass 2: the call sites. PhaseTimer is a sanctioned registration
  // wrapper — `PhaseTimer t(reg, "x")` registers x.calls (stable) plus
  // volatile wall-time metrics — so its construction sites contribute
  // non-exact stable manifest rows.
  std::vector<RegSite> sites;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "PhaseTimer") || member_access_before(toks, i))
      continue;
    std::size_t open = i + 1;
    if (toks[open].kind == TokKind::kIdent) ++open;  // PhaseTimer name(...)
    if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
    const std::size_t close = match_paren(toks, open);
    for (std::size_t j = open + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kString) continue;
      RegSite site;
      site.line = toks[i].line;
      site.kind = "phase";
      site.prefix = std::string(toks[j].text);
      site.exact = false;  // PhaseTimer appends .calls / .wall_ns / ...
      site.has_stability = true;
      site.stability = "stable";
      sites.push_back(std::move(site));
      break;
    }
  }
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const bool reg_call = is_ident(toks[i], "counter") ||
                          is_ident(toks[i], "gauge") ||
                          is_ident(toks[i], "histogram");
    if (!reg_call || !member_access_before(toks, i) ||
        !is_punct(toks[i + 1], "("))
      continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_paren(toks, open);
    if (close == toks.size()) continue;

    RegSite site;
    site.line = toks[i].line;
    site.kind = std::string(toks[i].text);

    // First argument: everything up to the first depth-1 comma.
    std::size_t arg_end = close;
    std::size_t depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      else if (is_punct(toks[j], ")")) --depth;
      else if (depth == 1 && is_punct(toks[j], ",")) {
        arg_end = j;
        break;
      }
    }

    // Leading literal of the name expression: a string (possibly behind
    // std::string(...) wrappers), or one resolvable prefix variable.
    for (std::size_t j = open + 1; j < arg_end; ++j) {
      const Tok& t = toks[j];
      if (is_ident(t, "std") || is_ident(t, "string") ||
          is_punct(t, "::") || is_punct(t, "("))
        continue;
      if (t.kind == TokKind::kString) {
        site.prefix = std::string(t.text);
        site.exact = true;
        for (std::size_t k = j + 1; k < arg_end; ++k)
          if (!is_punct(toks[k], ")")) {
            site.exact = false;
            break;
          }
      } else if (t.kind == TokKind::kIdent) {
        const auto it = prefix_vars.find(t.text);
        if (it != prefix_vars.end()) site.prefix = std::string(it->second);
      }
      break;
    }

    site.stability = "default";
    for (std::size_t j = arg_end; j < close; ++j) {
      if (is_ident(toks[j], "Stability")) {
        site.has_stability = true;
        site.stability = "expr";
      } else if (site.has_stability && is_ident(toks[j], "kStable")) {
        site.stability = "stable";
      } else if (site.has_stability && is_ident(toks[j], "kVolatile")) {
        site.stability = "volatile";
      }
    }
    sites.push_back(std::move(site));
  }
  return sites;
}

std::vector<std::string> collect_unordered_names(const TokenStream& ts) {
  const Toks& toks = ts.toks;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        toks[i].text.rfind("unordered_", 0) != 0)
      continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      std::size_t depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        else if (is_punct(toks[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_ident(toks[j], "const") || is_ident(toks[j], "volatile")))
      ++j;
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    if (j + 1 < toks.size() && is_punct(toks[j + 1], "::")) continue;
    const std::string name(toks[j].text);
    if (std::find(names.begin(), names.end(), name) == names.end())
      names.push_back(name);
  }
  return names;
}

const std::vector<RuleDef>& rules() { return rule_defs(); }

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kTable = [] {
    std::vector<RuleInfo> t;
    for (const RuleDef& r : rule_defs()) t.push_back(r.info);
    t.push_back({"obs-manifest", Severity::kError,
                 "the extracted stable-name manifest must cover every "
                 "metric in the stable golden snapshot",
                 "register the metric from a statically recoverable name "
                 "(leading string literal or a local prefix variable)"});
    t.push_back({"lint-annotation", Severity::kError,
                 "every sixdust-lint: comment parses: allow(rule, ...) "
                 "\xe2\x80\x94 reason, with a known rule id and a "
                 "non-empty reason",
                 "fix the annotation grammar (see DESIGN.md \xc2\xa7"
                 "14)"});
    t.push_back({"lint-unused-allow", Severity::kWarning,
                 "an allow annotation that suppresses nothing is stale",
                 "delete the annotation or re-point it at the line that "
                 "still violates the rule"});
    return t;
  }();
  return kTable;
}

}  // namespace sixdust::lint
