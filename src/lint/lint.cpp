#include "lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "lint/annotations.hpp"
#include "obs/json_mini.hpp"

namespace sixdust::lint {

namespace {

[[nodiscard]] const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& info : rule_table())
    if (info.id == id) return &info;
  return nullptr;
}

/// Companion header of a .cpp ("src/a/b.cpp" -> "src/a/b.hpp"): member
/// declarations live there, iterations in the .cpp.
[[nodiscard]] std::string companion_header(const std::string& path) {
  if (path.size() < 4 || path.compare(path.size() - 4, 4, ".cpp") != 0)
    return {};
  return path.substr(0, path.size() - 4) + ".hpp";
}

void sort_findings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

}  // namespace

std::size_t LintResult::count(Severity s, bool allowed) const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == s && f.allowed == allowed) ++n;
  return n;
}

LintResult run_lint(const std::vector<SourceFile>& files) {
  LintResult result;
  result.files = files.size();

  std::vector<TokenStream> streams;
  streams.reserve(files.size());
  for (const SourceFile& f : files) streams.push_back(lex(f.text));

  // Unordered-container names per file, so a .cpp sees the members its
  // companion header declares.
  std::vector<std::vector<std::string>> unordered_names;
  unordered_names.reserve(files.size());
  for (const TokenStream& ts : streams)
    unordered_names.push_back(collect_unordered_names(ts));

  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile& file = files[i];
    const std::vector<std::string>* extra = nullptr;
    const std::string companion = companion_header(file.path);
    if (!companion.empty()) {
      for (std::size_t j = 0; j < files.size(); ++j)
        if (files[j].path == companion) {
          extra = &unordered_names[j];
          break;
        }
    }

    std::vector<RawFinding> raw;
    FileCtx ctx{file.path, &streams[i], extra, &raw};
    for (const RuleDef& rule : rules())
      if (rule.in_scope(file.path)) rule.run(ctx);

    AnnotationSet anns = parse_annotations(streams[i]);

    // Grammar errors and unknown rule ids are findings themselves.
    for (const AnnotationError& e : anns.errors)
      result.findings.push_back({"lint-annotation", Severity::kError,
                                 file.path, e.line, e.message,
                                 std::string(find_rule("lint-annotation")->fixit),
                                 false, {}});
    std::vector<std::size_t> bad_annotations;
    for (std::size_t a = 0; a < anns.allows.size(); ++a) {
      for (const std::string& rule_id : anns.allows[a].rules) {
        if (find_rule(rule_id) != nullptr) continue;
        bad_annotations.push_back(a);
        result.findings.push_back(
            {"lint-annotation", Severity::kError, file.path,
             anns.allows[a].line,
             "allow names unknown rule '" + rule_id + "'",
             std::string(find_rule("lint-annotation")->fixit), false, {}});
      }
    }

    for (RawFinding& rf : raw) {
      const RuleInfo* info = find_rule(rf.rule);
      Finding f;
      f.rule = std::string(rf.rule);
      f.severity = info->severity;
      f.file = file.path;
      f.line = rf.line;
      f.message = std::move(rf.message);
      f.fixit = std::string(info->fixit);
      f.allowed = anns.allows_finding(f.rule, f.line, &f.reason);
      result.findings.push_back(std::move(f));
    }

    for (std::size_t a = 0; a < anns.allows.size(); ++a) {
      if (anns.allows[a].used) continue;
      if (std::find(bad_annotations.begin(), bad_annotations.end(), a) !=
          bad_annotations.end())
        continue;
      result.findings.push_back(
          {"lint-unused-allow", Severity::kWarning, file.path,
           anns.allows[a].line,
           "allow(" + anns.allows[a].rules.front() +
               (anns.allows[a].rules.size() > 1 ? ", ..." : "") +
               ") suppresses nothing",
           std::string(find_rule("lint-unused-allow")->fixit), false, {}});
    }

    // Manifest rows come from library and tool registrations only.
    if (file.path.rfind("src/", 0) == 0 || file.path.rfind("tools/", 0) == 0) {
      for (const RegSite& site : scan_registrations(streams[i]))
        result.manifest.push_back({site.prefix, site.exact, site.kind,
                                   site.stability, file.path, site.line});
    }
  }

  sort_findings(&result.findings);
  std::sort(result.manifest.begin(), result.manifest.end(),
            [](const ManifestRow& a, const ManifestRow& b) {
              return std::tie(a.prefix, a.file, a.line, a.kind) <
                     std::tie(b.prefix, b.file, b.line, b.kind);
            });
  return result;
}

std::vector<Finding> check_manifest_coverage(
    const std::vector<ManifestRow>& manifest, std::string_view golden_json,
    std::string_view golden_path) {
  std::vector<Finding> out;
  const auto snap = parse_metrics_snapshot(golden_json);
  if (!snap) {
    out.push_back({"obs-manifest", Severity::kError,
                   std::string(golden_path), 1,
                   "golden file is not a sixdust-metrics/1 snapshot",
                   std::string(find_rule("obs-manifest")->fixit), false, {}});
    return out;
  }
  for (const MetricSample& sample : snap->samples) {
    if (sample.stability != Stability::kStable) continue;
    bool covered = false;
    for (const ManifestRow& row : manifest) {
      if (row.stability == "volatile" || row.prefix.empty()) continue;
      if (row.exact ? (row.prefix == sample.name)
                    : (sample.name.rfind(row.prefix, 0) == 0)) {
        covered = true;
        break;
      }
    }
    if (!covered)
      out.push_back({"obs-manifest", Severity::kError,
                     std::string(golden_path), 1,
                     "stable metric '" + sample.name +
                         "' has no statically recoverable registration "
                         "site in src/ or tools/",
                     std::string(find_rule("obs-manifest")->fixit), false,
                     {}});
  }
  sort_findings(&out);
  return out;
}

std::string result_to_json(const LintResult& result) {
  std::string out = "{\n  \"schema\": \"sixdust-lint/1\",\n";
  out += "  \"summary\": {\"files\": " + std::to_string(result.files) +
         ", \"errors\": " +
         std::to_string(result.count(Severity::kError, false)) +
         ", \"warnings\": " +
         std::to_string(result.count(Severity::kWarning, false)) +
         ", \"allowed\": " +
         std::to_string(result.count(Severity::kError, true) +
                        result.count(Severity::kWarning, true)) +
         "},\n  \"findings\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out += "    {\"rule\":\"";
    append_json_escaped(out, f.rule);
    out += "\",\"severity\":\"";
    out += severity_name(f.severity);
    out += "\",\"file\":\"";
    append_json_escaped(out, f.file);
    out += "\",\"line\":" + std::to_string(f.line) + ",\"message\":\"";
    append_json_escaped(out, f.message);
    out += "\",\"fixit\":\"";
    append_json_escaped(out, f.fixit);
    out += "\",\"allowed\":";
    out += f.allowed ? "true" : "false";
    out += ",\"reason\":\"";
    append_json_escaped(out, f.reason);
    out += "\"}";
    if (i + 1 < result.findings.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"manifest\": [\n";
  for (std::size_t i = 0; i < result.manifest.size(); ++i) {
    const ManifestRow& row = result.manifest[i];
    out += "    {\"prefix\":\"";
    append_json_escaped(out, row.prefix);
    out += "\",\"exact\":";
    out += row.exact ? "true" : "false";
    out += ",\"kind\":\"";
    append_json_escaped(out, row.kind);
    out += "\",\"stability\":\"";
    append_json_escaped(out, row.stability);
    out += "\",\"file\":\"";
    append_json_escaped(out, row.file);
    out += "\",\"line\":" + std::to_string(row.line) + "}";
    if (i + 1 < result.manifest.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool load_tree(const std::string& root,
               const std::vector<std::string>& subdirs,
               std::vector<SourceFile>* out, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& subdir : subdirs) {
    const fs::path base = fs::path(root) / subdir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      if (error != nullptr) *error = "not a directory: " + base.string();
      return false;
    }
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      paths.push_back(
          fs::relative(it->path(), root, ec).generic_string());
    }
    if (ec) {
      if (error != nullptr)
        *error = "walking " + base.string() + ": " + ec.message();
      return false;
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) {
    std::ifstream f(fs::path(root) / p, std::ios::binary);
    if (!f) {
      if (error != nullptr) *error = "cannot read " + p;
      return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    out->push_back({p, std::move(buf).str()});
  }
  return true;
}

}  // namespace sixdust::lint
