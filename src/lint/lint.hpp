#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace sixdust::lint {

/// One file to analyze. `path` is repo-relative with '/' separators —
/// rule scoping (stable-path vs test, allowlists) keys off it.
struct SourceFile {
  std::string path;
  std::string text;
};

/// One reported contract violation (or annotation problem).
struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  std::string file;
  std::size_t line = 0;
  std::string message;
  std::string fixit;
  bool allowed = false;   // suppressed by a sixdust-lint: allow
  std::string reason;     // the allow's justification, when allowed
};

/// One stable-name manifest row (see RegSite); `file`/`line` locate the
/// registration. Only src/ and tools/ registrations contribute.
struct ManifestRow {
  std::string prefix;
  bool exact = false;
  std::string kind;
  std::string stability;  // stable | volatile | expr | default
  std::string file;
  std::size_t line = 0;
};

struct LintResult {
  std::vector<Finding> findings;   // sorted by (file, line, rule)
  std::vector<ManifestRow> manifest;
  std::size_t files = 0;

  [[nodiscard]] std::size_t count(Severity s, bool allowed) const;
  /// Unannotated errors — what --strict fails on.
  [[nodiscard]] std::size_t blocking() const {
    return count(Severity::kError, false);
  }
};

/// Run every rule over `files` (pre-sorted or not — findings come back
/// sorted), match allow annotations, and extract the stable-name
/// manifest.
[[nodiscard]] LintResult run_lint(const std::vector<SourceFile>& files);

/// Check that the manifest covers every metric of a sixdust-metrics/1
/// golden document: each name must equal an exact stable row or extend a
/// non-exact stable row's prefix. Returns obs-manifest findings anchored
/// at `golden_path` (empty == full coverage).
[[nodiscard]] std::vector<Finding> check_manifest_coverage(
    const std::vector<ManifestRow>& manifest, std::string_view golden_json,
    std::string_view golden_path);

/// JSON export, schema sixdust-lint/1: summary, findings (one per line,
/// sorted), manifest rows (sorted by prefix). Deterministic.
[[nodiscard]] std::string result_to_json(const LintResult& result);

/// Recursively collect .hpp/.cpp files under `root`/`subdir` for each
/// subdir, paths stored root-relative, sorted. Returns false (and sets
/// `error`) when a subdir is missing or a file is unreadable.
[[nodiscard]] bool load_tree(const std::string& root,
                             const std::vector<std::string>& subdirs,
                             std::vector<SourceFile>* out,
                             std::string* error);

}  // namespace sixdust::lint
