#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sixdust::lint {

/// Token classes the contract rules care about. Preprocessor directives
/// are consumed as whole logical lines (continuations included) and not
/// tokenized — an `#include <unordered_map>` must not look like a use of
/// `unordered_map`.
enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. digit separators, exponents)
  kString,  // "...", R"(...)", prefix forms; text excludes the quotes
  kChar,    // '...'
  kPunct,   // one punctuation glyph, except "::" and "->" (one token each)
};

/// One lexed token. `text` views into the source buffer handed to lex(),
/// which must outlive the stream.
struct Tok {
  TokKind kind = TokKind::kPunct;
  std::string_view text;
  std::size_t line = 0;  // 1-based
};

/// One comment, kept out of the token stream (rules never see comment
/// text as code) but retained for the annotation grammar.
struct Comment {
  std::string_view text;  // without the // or /* */ markers
  std::size_t line = 0;   // 1-based line the comment starts on
  bool own_line = false;  // nothing but whitespace precedes it on its line
};

struct TokenStream {
  std::vector<Tok> toks;
  std::vector<Comment> comments;
};

/// Tokenize one C++ translation unit. The lexer is deliberately lossy —
/// it understands exactly enough of the grammar (comments, string/char
/// literals including raw strings, preprocessor lines, "::" and "->") for
/// token-level contract rules; it never needs to parse declarations.
[[nodiscard]] TokenStream lex(std::string_view src);

}  // namespace sixdust::lint
