#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace sixdust::lint {

/// One parsed `sixdust-lint:` annotation.
///
/// Grammar (one per comment):
///   // sixdust-lint: allow(rule[, rule...]) — reason
///   // sixdust-lint: allow-file(rule[, rule...]) — reason
///
/// The separator before the reason may be an em-dash (—), "--", or "-";
/// the reason must be non-empty — an allow with no justification is
/// itself a lint error. A trailing annotation suppresses findings on its
/// own line; an own-line annotation suppresses findings on the next line
/// that carries code; allow-file suppresses the rule anywhere in the file.
struct Annotation {
  std::vector<std::string> rules;
  std::string reason;
  std::size_t line = 0;        // line the comment starts on
  std::size_t target_line = 0; // line it suppresses (0 for allow-file)
  bool file_scope = false;
  bool used = false;           // set when it suppresses at least one finding
};

/// A malformed `sixdust-lint:` comment (bad grammar, empty rule list,
/// missing reason). `message` explains what failed to parse.
struct AnnotationError {
  std::size_t line = 0;
  std::string message;
};

struct AnnotationSet {
  std::vector<Annotation> allows;
  std::vector<AnnotationError> errors;

  /// Does an annotation cover `rule` at `line`? Marks the matching
  /// annotation used. `reason` (optional out) receives its justification.
  [[nodiscard]] bool allows_finding(const std::string& rule,
                                    std::size_t line, std::string* reason);
};

/// Extract annotations from a lexed file. Comments that do not contain
/// the literal `sixdust-lint:` marker are ignored.
[[nodiscard]] AnnotationSet parse_annotations(const TokenStream& ts);

}  // namespace sixdust::lint
