#include "lint/lexer.hpp"

namespace sixdust::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return ident_start(c) || (c >= '0' && c <= '9');
}
[[nodiscard]] bool digit(char c) { return c >= '0' && c <= '9'; }

/// String-literal encoding prefixes that may precede a quote with no gap.
[[nodiscard]] bool is_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8" || ident == "u" || ident == "U" ||
         ident == "L" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  TokenStream run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_had_token_ = false;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && !line_had_token_) {
        preproc_line();
        continue;
      }
      if (c == '"') {
        string_literal(pos_);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (digit(c) || (c == '.' && pos_ + 1 < src_.size() &&
                       digit(src_[pos_ + 1]))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  void emit(TokKind kind, std::size_t begin, std::size_t end,
            std::size_t line) {
    out_.toks.push_back({kind, src_.substr(begin, end - begin), line});
    line_had_token_ = true;
  }

  void line_comment() {
    const std::size_t line = line_;
    const bool own = !line_had_token_;
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back({src_.substr(begin, pos_ - begin), line, own});
  }

  void block_comment() {
    const std::size_t line = line_;
    const bool own = !line_had_token_;
    pos_ += 2;
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    out_.comments.push_back({src_.substr(begin, end - begin), line, own});
  }

  /// Consume a whole preprocessor logical line, honoring backslash
  /// continuations. Comments inside it are still collected so an
  /// annotation can sit on a directive line.
  void preproc_line() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_had_token_ = false;
        ++pos_;
        return;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        line_comment();
        return;  // a // comment ends the directive's last line
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        block_comment();
        continue;
      }
      ++pos_;
    }
  }

  /// `begin` points at the opening quote; any encoding prefix has already
  /// been consumed by identifier().
  void string_literal(std::size_t begin, bool raw = false) {
    const std::size_t line = line_;
    if (raw) {
      // R"delim( ... )delim"
      std::size_t p = pos_ + 1;  // past the quote
      const std::size_t dbegin = p;
      while (p < src_.size() && src_[p] != '(') ++p;
      const std::string_view delim = src_.substr(dbegin, p - dbegin);
      std::size_t body = p + 1;
      std::size_t content_end = src_.size();
      std::size_t after = src_.size();
      while (body < src_.size()) {
        if (src_[body] == '\n') ++line_;
        if (src_[body] == ')' &&
            src_.compare(body + 1, delim.size(), delim) == 0 &&
            body + 1 + delim.size() < src_.size() &&
            src_[body + 1 + delim.size()] == '"') {
          content_end = body;
          after = body + delim.size() + 2;
          break;
        }
        ++body;
      }
      emit(TokKind::kString, p + 1, content_end, line);
      pos_ = after;
      return;
    }
    std::size_t p = pos_ + 1;
    while (p < src_.size() && src_[p] != '"' && src_[p] != '\n') {
      if (src_[p] == '\\' && p + 1 < src_.size()) ++p;
      ++p;
    }
    emit(TokKind::kString, begin + 1, p, line);
    pos_ = p < src_.size() ? p + 1 : p;
  }

  void char_literal() {
    const std::size_t line = line_;
    std::size_t p = pos_ + 1;
    while (p < src_.size() && src_[p] != '\'' && src_[p] != '\n') {
      if (src_[p] == '\\' && p + 1 < src_.size()) ++p;
      ++p;
    }
    emit(TokKind::kChar, pos_ + 1, p, line);
    pos_ = p < src_.size() ? p + 1 : p;
  }

  void number() {
    const std::size_t begin = pos_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs bind to the literal only after e/E/p/P.
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, begin, pos_, line_);
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    const std::string_view ident = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && src_[pos_] == '"' && is_string_prefix(ident)) {
      string_literal(pos_, ident.back() == 'R');
      return;
    }
    emit(TokKind::kIdent, begin, pos_, line_);
  }

  void punct() {
    const std::size_t begin = pos_;
    if (src_[pos_] == ':' && pos_ + 1 < src_.size() &&
        src_[pos_ + 1] == ':') {
      pos_ += 2;
    } else if (src_[pos_] == '-' && pos_ + 1 < src_.size() &&
               src_[pos_ + 1] == '>') {
      pos_ += 2;
    } else {
      ++pos_;
    }
    emit(TokKind::kPunct, begin, pos_, line_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  bool line_had_token_ = false;
  TokenStream out_;
};

}  // namespace

TokenStream lex(std::string_view src) { return Lexer(src).run(); }

}  // namespace sixdust::lint
