#include "lint/annotations.hpp"

#include <algorithm>

namespace sixdust::lint {

namespace {

constexpr std::string_view kMarker = "sixdust-lint:";

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n'))
    s.remove_suffix(1);
  return s;
}

/// Split the `rule[, rule...]` list; empty items are grammar errors.
[[nodiscard]] bool split_rules(std::string_view list,
                               std::vector<std::string>* out) {
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view item =
        trim(comma == std::string_view::npos ? list : list.substr(0, comma));
    if (item.empty()) return false;
    out->emplace_back(item);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return !out->empty();
}

/// Strip the reason separator: an em-dash (U+2014, "\xe2\x80\x94"),
/// "--", or a single "-". Returns false when none leads `rest`.
[[nodiscard]] bool strip_separator(std::string_view* rest) {
  if (rest->rfind("\xe2\x80\x94", 0) == 0) {
    rest->remove_prefix(3);
    return true;
  }
  if (rest->rfind("--", 0) == 0) {
    rest->remove_prefix(2);
    return true;
  }
  if (rest->rfind("-", 0) == 0) {
    rest->remove_prefix(1);
    return true;
  }
  return false;
}

/// First source line at or after `from` that carries a token — where an
/// own-line annotation attaches.
[[nodiscard]] std::size_t next_code_line(const TokenStream& ts,
                                         std::size_t from) {
  std::size_t best = 0;
  for (const Tok& t : ts.toks)
    if (t.line >= from && (best == 0 || t.line < best)) best = t.line;
  return best;
}

}  // namespace

bool AnnotationSet::allows_finding(const std::string& rule, std::size_t line,
                                   std::string* reason) {
  for (Annotation& a : allows) {
    if (!a.file_scope && a.target_line != line) continue;
    if (std::find(a.rules.begin(), a.rules.end(), rule) == a.rules.end())
      continue;
    a.used = true;
    if (reason != nullptr) *reason = a.reason;
    return true;
  }
  return false;
}

AnnotationSet parse_annotations(const TokenStream& ts) {
  AnnotationSet out;
  for (const Comment& c : ts.comments) {
    // Only a comment that *begins* with the marker is an annotation;
    // prose that mentions sixdust-lint mid-sentence is ignored.
    const std::string_view head = trim(c.text);
    if (head.rfind(kMarker, 0) != 0) continue;
    std::string_view rest = trim(head.substr(kMarker.size()));

    bool file_scope = false;
    if (rest.rfind("allow-file(", 0) == 0) {
      file_scope = true;
      rest.remove_prefix(std::string_view("allow-file(").size());
    } else if (rest.rfind("allow(", 0) == 0) {
      rest.remove_prefix(std::string_view("allow(").size());
    } else {
      out.errors.push_back(
          {c.line, "expected 'allow(...)' or 'allow-file(...)' after "
                   "'sixdust-lint:'"});
      continue;
    }

    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      out.errors.push_back({c.line, "unterminated rule list (missing ')')"});
      continue;
    }

    Annotation a;
    a.line = c.line;
    a.file_scope = file_scope;
    if (!split_rules(rest.substr(0, close), &a.rules)) {
      out.errors.push_back({c.line, "empty rule list in allow(...)"});
      continue;
    }

    std::string_view tail = trim(rest.substr(close + 1));
    if (!strip_separator(&tail)) {
      out.errors.push_back(
          {c.line,
           "missing '\xe2\x80\x94 reason' after the rule list (every "
           "allow must say why)"});
      continue;
    }
    tail = trim(tail);
    if (tail.empty()) {
      out.errors.push_back({c.line, "empty reason after the separator"});
      continue;
    }
    a.reason.assign(tail);

    if (!file_scope) {
      a.target_line = c.own_line ? next_code_line(ts, c.line + 1) : c.line;
      if (a.target_line == 0) {
        out.errors.push_back(
            {c.line, "own-line allow has no following code line to attach "
                     "to"});
        continue;
      }
    }
    out.allows.push_back(std::move(a));
  }
  return out;
}

}  // namespace sixdust::lint
