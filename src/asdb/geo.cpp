#include "asdb/geo.hpp"

namespace sixdust {

std::string GeoDb::country(const Ipv6& a) const {
  auto asn = rib_->origin(a);
  if (!asn) return "??";
  const AsInfo* info = registry_->find(*asn);
  if (!info || info->cc.empty()) return "??";
  return info->cc;
}

}  // namespace sixdust
