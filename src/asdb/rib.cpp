#include "asdb/rib.hpp"

namespace sixdust {

void Rib::announce(const Prefix& p, Asn origin) {
  trie_.insert(p, origin);
  frozen_.reset();
  by_as_[origin].push_back(routes_.size());
  routes_.push_back(Route{p, origin});
}

void Rib::freeze() {
  if (!frozen_) frozen_.emplace(trie_);
}

std::optional<Asn> Rib::origin(const Ipv6& a) const {
  const Asn* v = frozen_ ? frozen_->lookup(a) : trie_.lookup(a);
  if (v == nullptr) return std::nullopt;
  return *v;
}

std::optional<Rib::Route> Rib::route(const Ipv6& a) const {
  if (frozen_) {
    auto m = frozen_->longest_match(a);
    if (!m) return std::nullopt;
    return Route{m->prefix, *m->value};
  }
  auto m = trie_.longest_match(a);
  if (!m) return std::nullopt;
  return Route{m->prefix, *m->value};
}

std::vector<Prefix> Rib::prefixes_of(Asn asn) const {
  std::vector<Prefix> out;
  auto it = by_as_.find(asn);
  if (it == by_as_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(routes_[i].prefix);
  return out;
}

u128 Rib::announced_space(Asn asn) const {
  u128 total = 0;
  auto it = by_as_.find(asn);
  if (it == by_as_.end()) return total;
  for (std::size_t i : it->second) total += routes_[i].prefix.size();
  return total;
}

}  // namespace sixdust
