#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "asdb/asn.hpp"
#include "netbase/frozen_lpm.hpp"
#include "netbase/prefix_trie.hpp"
#include "netbase/u128.hpp"

namespace sixdust {

/// Routing Information Base: the set of announced prefixes with origin
/// ASes. Stands in for the RIPE RIS rrc00 dump the paper uses to relate
/// hitlist coverage to announced space (Sec. 4.1, Fig. 6).
class Rib {
 public:
  struct Route {
    Prefix prefix;
    Asn origin = kAsnNone;
  };

  void announce(const Prefix& p, Asn origin);

  /// Compile the immutable lookup snapshot; origin()/route() run on it
  /// until the next announce(). The world builder announces everything and
  /// the World constructor freezes, so every probe-path lookup during a
  /// scan hits the snapshot. Idempotent; a frozen Rib is safe to query
  /// concurrently.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_.has_value(); }

  /// Origin AS by longest-prefix match.
  [[nodiscard]] std::optional<Asn> origin(const Ipv6& a) const;

  /// Most-specific covering announcement.
  [[nodiscard]] std::optional<Route> route(const Ipv6& a) const;

  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }
  [[nodiscard]] std::size_t prefix_count() const { return routes_.size(); }

  /// Number of distinct origin ASes.
  [[nodiscard]] std::size_t as_count() const { return by_as_.size(); }

  /// All prefixes originated by `asn`.
  [[nodiscard]] std::vector<Prefix> prefixes_of(Asn asn) const;

  /// Total announced address space of `asn`. The world builder never
  /// announces overlapping prefixes for the same AS, so a plain sum is
  /// exact.
  [[nodiscard]] u128 announced_space(Asn asn) const;

 private:
  PrefixTrie<Asn> trie_;
  std::optional<FrozenLpm<Asn>> frozen_;
  std::vector<Route> routes_;
  std::unordered_map<Asn, std::vector<std::size_t>> by_as_;
};

}  // namespace sixdust
