#pragma once

#include <string>

#include "asdb/registry.hpp"
#include "asdb/rib.hpp"
#include "netbase/ipv6.hpp"

namespace sixdust {

/// GeoLite2-style country lookup: address -> origin AS -> registered
/// country. The paper uses MaxMind GeoLite2 only as a coarse indicator of
/// network location (Sec. 4.2); this mirrors that granularity.
class GeoDb {
 public:
  GeoDb(const Rib* rib, const AsRegistry* registry)
      : rib_(rib), registry_(registry) {}

  /// ISO country code, or "??" when unmapped.
  [[nodiscard]] std::string country(const Ipv6& a) const;

 private:
  const Rib* rib_;
  const AsRegistry* registry_;
};

}  // namespace sixdust
