#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "asdb/asn.hpp"

namespace sixdust {

/// Registry of AS metadata. The world builder fills it with the paper's
/// named cast plus a procedural long tail; analysis code uses it to render
/// table rows ("ANTEL (AS6057)") and country statistics.
class AsRegistry {
 public:
  /// Registers (or overwrites) an AS.
  void add(AsInfo info);

  [[nodiscard]] const AsInfo* find(Asn asn) const;

  /// Name for table output: "Amazon (AS16509)", or "AS12345" if unknown.
  [[nodiscard]] std::string label(Asn asn) const;

  [[nodiscard]] std::size_t size() const { return infos_.size(); }
  [[nodiscard]] const std::vector<AsInfo>& all() const { return infos_; }

  /// The named cast from the paper (see asn.hpp) with names, countries and
  /// operator kinds.
  static AsRegistry well_known();

 private:
  std::vector<AsInfo> infos_;
  std::unordered_map<Asn, std::size_t> index_;
};

}  // namespace sixdust
