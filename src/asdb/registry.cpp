#include "asdb/registry.hpp"

namespace sixdust {

void AsRegistry::add(AsInfo info) {
  auto it = index_.find(info.asn);
  if (it != index_.end()) {
    infos_[it->second] = std::move(info);
    return;
  }
  index_.emplace(info.asn, infos_.size());
  infos_.push_back(std::move(info));
}

const AsInfo* AsRegistry::find(Asn asn) const {
  auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &infos_[it->second];
}

std::string AsRegistry::label(Asn asn) const {
  const AsInfo* info = find(asn);
  const std::string num = "AS" + std::to_string(asn);
  if (!info || info->name.empty()) return num;
  return info->name + " (" + num + ")";
}

AsRegistry AsRegistry::well_known() {
  AsRegistry r;
  r.add({kAsAmazon, "Amazon", "US", AsKind::Cloud});
  r.add({kAsAntel, "ANTEL", "UY", AsKind::Isp});
  r.add({kAsDtag, "DTAG", "DE", AsKind::Isp});
  r.add({kAsLinode, "Linode", "US", AsKind::Hosting});
  r.add({kAsChinaTelecomBb, "China Telecom Backbone", "CN", AsKind::Transit});
  r.add({kAsChinaTelecom, "China Telecom", "CN", AsKind::Isp});
  r.add({kAsCloudflare, "Cloudflare", "US", AsKind::Cdn});
  r.add({kAsCloudflareLon, "Cloudflare London", "GB", AsKind::Cdn});
  r.add({kAsFastly, "Fastly", "US", AsKind::Cdn});
  r.add({kAsAkamai, "Akamai", "US", AsKind::Cdn});
  r.add({kAsAkamaiTech, "Akamai Technologies", "US", AsKind::Cdn});
  r.add({kAsTrafficforce, "Trafficforce", "LT", AsKind::Other});
  r.add({kAsEpicUp, "EpicUp", "US", AsKind::Cloud});
  r.add({kAsFreeSas, "Free SAS", "FR", AsKind::Isp});
  r.add({kAsDigitalOcean, "DigitalOcean", "US", AsKind::Hosting});
  r.add({kAsVnpt, "VNPT", "VN", AsKind::Isp});
  r.add({kAsChinaMobile, "China Mobile", "CN", AsKind::Isp});
  r.add({kAsChinaUnicom, "China Unicom", "CN", AsKind::Isp});
  r.add({kAsGoogle, "Google", "US", AsKind::Cloud});
  r.add({kAsCern, "CERN", "CH", AsKind::Academic});
  r.add({kAsArnes, "ARNES", "SI", AsKind::Academic});
  r.add({kAsHomePl, "home.pl", "PL", AsKind::Hosting});
  r.add({kAsDeutscheGlasfaser, "Deutsche Glasfaser", "DE", AsKind::Isp});
  r.add({kAsMisaka, "Misaka", "US", AsKind::Cdn});
  r.add({kAsLevel3, "Level3", "US", AsKind::Transit});
  r.add({kAsRacktech, "Racktech", "RU", AsKind::Hosting});
  r.add({kAsOrange, "Orange", "FR", AsKind::Isp});
  r.add({kAsComcast, "Comcast", "US", AsKind::Isp});
  r.add({kAsTelefonica, "Telefonica", "ES", AsKind::Isp});
  r.add({kAsTurkTelekom, "Turk Telekom", "TR", AsKind::Isp});
  r.add({kAsKddi, "KDDI", "JP", AsKind::Isp});
  int i = 0;
  for (Asn asn : kAsCnTable5) {
    r.add({asn, "CN Provider " + std::to_string(++i), "CN", AsKind::Isp});
  }
  return r;
}

}  // namespace sixdust
