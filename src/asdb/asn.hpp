#pragma once

#include <cstdint>
#include <string>

namespace sixdust {

/// Autonomous System number (32-bit per RFC 6793).
using Asn = std::uint32_t;

inline constexpr Asn kAsnNone = 0;

/// Coarse operator classification, used by the world builder to pick
/// deployment models and by the analysis layer for reporting.
enum class AsKind {
  Isp,       // eyeball access networks (CPE pools, rotating prefixes)
  Hosting,   // VPS / dedicated hosting (dense responsive servers)
  Cdn,       // content delivery (fully-responsive prefixes)
  Cloud,     // hyperscale cloud (huge aliased regions)
  Transit,   // backbone carriers (router addresses)
  Academic,  // NRENs, universities
  Other,
};

struct AsInfo {
  Asn asn = kAsnNone;
  std::string name;
  std::string cc;  // ISO 3166-1 alpha-2 country code
  AsKind kind = AsKind::Other;
};

[[nodiscard]] inline std::string as_kind_name(AsKind k) {
  switch (k) {
    case AsKind::Isp: return "ISP";
    case AsKind::Hosting: return "Hosting";
    case AsKind::Cdn: return "CDN";
    case AsKind::Cloud: return "Cloud";
    case AsKind::Transit: return "Transit";
    case AsKind::Academic: return "Academic";
    case AsKind::Other: return "Other";
  }
  return "Other";
}

// --- The paper's named cast -------------------------------------------------
// ASes that play specific roles in the evaluation (Sections 4-6, Tables 1-5).

inline constexpr Asn kAsAmazon = 16509;        // 32 % of raw input, aliased
inline constexpr Asn kAsAntel = 6057;          // ISP, 16 % of alias-filtered input
inline constexpr Asn kAsDtag = 3320;           // ISP, 10 %
inline constexpr Asn kAsLinode = 63949;        // top responsive AS (7.9 %)
inline constexpr Asn kAsChinaTelecomBb = 4134;  // 46.44 % of GFW-impacted
inline constexpr Asn kAsChinaTelecom = 4812;   // 14.59 %
inline constexpr Asn kAsCloudflare = 13335;    // CDN, domains in aliased prefixes
inline constexpr Asn kAsCloudflareLon = 209242;  // 100 % aliased
inline constexpr Asn kAsFastly = 54113;        // 95.3 % of space aliased
inline constexpr Asn kAsAkamai = 20940;        // CDN; 6Tree's /48 blowup
inline constexpr Asn kAsAkamaiTech = 33905;    // 100 % aliased
inline constexpr Asn kAsTrafficforce = 212144;  // 66.4 k ICMP-only /64 aliases
inline constexpr Asn kAsEpicUp = 397165;       // 61 aliased /28s
inline constexpr Asn kAsFreeSas = 12322;       // TGA bias target (52 %)
inline constexpr Asn kAsDigitalOcean = 14061;  // TGA #2
inline constexpr Asn kAsVnpt = 45899;          // unresponsive-pool top AS
inline constexpr Asn kAsChinaMobile = 9808;
inline constexpr Asn kAsChinaUnicom = 4837;
inline constexpr Asn kAsGoogle = 15169;
inline constexpr Asn kAsCern = 513;
inline constexpr Asn kAsArnes = 2107;
inline constexpr Asn kAsHomePl = 12824;
inline constexpr Asn kAsDeutscheGlasfaser = 60294;
inline constexpr Asn kAsMisaka = 50069;        // anycast DNS (Table 2 UDP/53)
inline constexpr Asn kAsLevel3 = 3356;
inline constexpr Asn kAsRacktech = 208861;
inline constexpr Asn kAsOrange = 3215;
inline constexpr Asn kAsComcast = 7922;
inline constexpr Asn kAsTelefonica = 3352;
inline constexpr Asn kAsTurkTelekom = 9121;
inline constexpr Asn kAsKddi = 2516;
// Additional Chinese ASes from Table 5.
inline constexpr Asn kAsCnTable5[] = {134774, 134773, 140329, 134772,
                                      136200, 140330, 140316};

/// First ASN of the procedurally generated long-tail (kept clear of the
/// named cast).
inline constexpr Asn kTailAsnBase = 400000;

}  // namespace sixdust
