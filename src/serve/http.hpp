#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace sixdust::serve {

/// A parsed HTTP request line (the only part of a scrape request the
/// server acts on; headers are consumed and ignored).
struct HttpRequest {
  std::string method;
  std::string path;  // query string stripped
};

/// Parse `METHOD SP TARGET SP HTTP/x.y`; nullopt on anything malformed
/// (missing fields, control bytes, non-HTTP version token). Exposed for
/// the fuzz tests — this is the exact parser the server runs on hostile
/// input.
[[nodiscard]] std::optional<HttpRequest> parse_http_request_line(
    std::string_view line);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Serialize a full HTTP/1.0 response (status line, Content-Type,
/// Content-Length, Connection: close).
[[nodiscard]] std::string render_http_response(const HttpResponse& r);

/// Minimal HTTP/1.0 scrape endpoint for the daemon's second listen
/// socket (`--http`): GET-only, one response per connection, then close.
///
/// It reuses the binary server's poll-driven lane machinery: lane 0 owns
/// the non-blocking listen socket and deals accepted fds round-robin;
/// each lane multiplexes its connections with poll(). Unlike the binary
/// plane, responses here can be large (a /metrics export) and scrape
/// clients can be arbitrarily slow, so connection fds are non-blocking
/// and a partially written response parks in a per-connection buffer
/// drained on POLLOUT — a slowloris-style reader stalls only its own
/// connection, never a lane. A request whose headers exceed
/// `max_request_bytes` is answered 431 and closed; a malformed request
/// line gets 400; a non-GET method 405.
///
/// All serve.http.* metrics are volatile: scrape traffic is wall-clock
/// territory and never part of the stable export surface.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Config {
    ListenSpec listen;
    /// Poll lanes (>= 1; lane 0 also accepts). Scrape traffic is light —
    /// one lane is plenty.
    unsigned readers = 1;
    /// Cap on buffered request bytes before the blank line.
    std::size_t max_request_bytes = 8192;
    /// Open connections across all lanes; beyond this, accepts are
    /// dropped immediately.
    std::size_t max_conns = 128;
    /// Borrowed; may be null (metrics off).
    MetricsRegistry* metrics = nullptr;
    /// Shared executor to host the lanes on; null = dedicated threads.
    std::shared_ptr<ThreadPool> pool;
    /// Routes requests to responses; required. Runs on a lane thread.
    Handler handler;
  };

  explicit HttpServer(Config cfg);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] bool start(std::string* error);
  void stop();

  [[nodiscard]] std::string endpoint() const;
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;       // bytes before the blank line
    std::string out;      // rendered response
    std::size_t out_off = 0;
    bool responding = false;  // headers complete, draining `out`
  };

  void lane_loop(unsigned lane);
  void accept_ready();
  /// Read request bytes; transition to responding (or close). False =
  /// close the connection now.
  [[nodiscard]] bool read_ready(Conn& conn);
  /// Flush pending response bytes. False = done or broken: close.
  [[nodiscard]] bool write_ready(Conn& conn);
  void respond(Conn& conn, const HttpResponse& r);

  Config cfg_;
  Counter* requests_ = nullptr;
  Counter* bad_requests_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* bytes_out_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string unix_path_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::atomic<std::uint64_t> open_conns_{0};
  // sixdust-lint: allow(conc-raw-thread) — long-lived scrape lanes park
  // in poll(), same hosting contract as serve::Server.
  std::thread host_;
  // sixdust-lint: allow(conc-raw-thread) — dedicated lanes, no-pool mode.
  std::vector<std::thread> lane_threads_;

  std::vector<std::unique_ptr<std::mutex>> inbox_m_;
  std::vector<std::vector<int>> inbox_;
  unsigned next_lane_ = 0;
};

/// Blocking HTTP/1.0 GET against a live endpoint (test and sixdust-top
/// client side): connect, send the request, read to EOF, split the status
/// code and body out. nullopt on any transport failure or unparsable
/// response. `connect_timeout_ms` > 0 keeps retrying the connect.
struct HttpGetResult {
  int status = 0;
  std::string body;
};
[[nodiscard]] std::optional<HttpGetResult> http_get(
    const ListenSpec& spec, const std::string& path, int timeout_ms = 2000,
    int connect_timeout_ms = 0);

}  // namespace sixdust::serve
