#include "serve/daemon.hpp"

#include <chrono>
#include <cstdio>

#include "serve/telemetry.hpp"
#include "topo/world.hpp"

namespace sixdust::serve {

std::string epoch_records_json(std::span<const EpochRecord> records) {
  std::string out = "{\"schema\":\"sixdust-serve-epochs/1\",\"epochs\":[\n";
  char buf[320];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EpochRecord& r = records[i];
    std::snprintf(
        buf, sizeof buf,
        "{\"epoch\":%d,\"date\":\"%s\",\"input_total\":%llu,"
        "\"scan_targets\":%llu,\"aliased_prefixes\":%llu,"
        "\"responsive\":%llu,\"excluded_total\":%llu,"
        "\"digest\":\"%016llx\"}%s\n",
        r.epoch, r.date.c_str(),
        static_cast<unsigned long long>(r.input_total),
        static_cast<unsigned long long>(r.scan_targets),
        static_cast<unsigned long long>(r.aliased_prefixes),
        static_cast<unsigned long long>(r.responsive),
        static_cast<unsigned long long>(r.excluded_total),
        static_cast<unsigned long long>(r.digest),
        i + 1 == records.size() ? "" : ",");
    out += buf;
  }
  out += "]}\n";
  return out;
}

namespace {

/// Nanoseconds on the monotonic clock — only read when a LiveTelemetry is
/// attached, and only to time the freeze/publish barrier work.
std::uint64_t mono_ns() {
  // sixdust-lint: allow(det-wallclock) — feeds the volatile telemetry
  // histograms only; the EpochRecord stream stays purely simulation-driven.
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

}  // namespace

EpochPublisher::EpochPublisher(const HitlistService* service,
                               const World* world, SnapshotManager* snaps,
                               LiveTelemetry* telemetry)
    : service_(service), world_(world), snaps_(snaps), telemetry_(telemetry) {}

void EpochPublisher::on_epoch(const HitlistService::ScanOutcome& outcome) {
  const std::uint64_t t0 = telemetry_ != nullptr ? mono_ns() : 0;
  auto snap = freeze_epoch(*service_, *world_, outcome.date.index);
  if (telemetry_ != nullptr) telemetry_->record_freeze(mono_ns() - t0);
  EpochRecord rec;
  rec.epoch = snap->epoch();
  rec.date = snap->info().date;
  rec.input_total = snap->info().input_total;
  rec.scan_targets = snap->info().scan_targets;
  rec.aliased_prefixes = snap->info().aliased_prefixes;
  rec.responsive = snap->info().responsive;
  rec.excluded_total = snap->info().excluded_total;
  rec.digest = snap->digest();
  const int epoch = snap->epoch();
  records_.push_back(std::move(rec));
  if (snaps_ != nullptr) {
    // Grab the snapshot this publish supersedes *before* the swap so the
    // telemetry plane can watch its readers drain.
    std::shared_ptr<const EpochSnapshot> superseded =
        telemetry_ != nullptr ? snaps_->current() : nullptr;
    const std::uint64_t t1 = telemetry_ != nullptr ? mono_ns() : 0;
    snaps_->publish(std::move(snap));
    if (telemetry_ != nullptr)
      telemetry_->record_publish(epoch, mono_ns() - t1, std::move(superseded));
  }
}

}  // namespace sixdust::serve
