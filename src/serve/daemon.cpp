#include "serve/daemon.hpp"

#include <cstdio>

#include "topo/world.hpp"

namespace sixdust::serve {

std::string epoch_records_json(std::span<const EpochRecord> records) {
  std::string out = "{\"schema\":\"sixdust-serve-epochs/1\",\"epochs\":[\n";
  char buf[320];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EpochRecord& r = records[i];
    std::snprintf(
        buf, sizeof buf,
        "{\"epoch\":%d,\"date\":\"%s\",\"input_total\":%llu,"
        "\"scan_targets\":%llu,\"aliased_prefixes\":%llu,"
        "\"responsive\":%llu,\"excluded_total\":%llu,"
        "\"digest\":\"%016llx\"}%s\n",
        r.epoch, r.date.c_str(),
        static_cast<unsigned long long>(r.input_total),
        static_cast<unsigned long long>(r.scan_targets),
        static_cast<unsigned long long>(r.aliased_prefixes),
        static_cast<unsigned long long>(r.responsive),
        static_cast<unsigned long long>(r.excluded_total),
        static_cast<unsigned long long>(r.digest),
        i + 1 == records.size() ? "" : ",");
    out += buf;
  }
  out += "]}\n";
  return out;
}

EpochPublisher::EpochPublisher(const HitlistService* service,
                               const World* world, SnapshotManager* snaps)
    : service_(service), world_(world), snaps_(snaps) {}

void EpochPublisher::on_epoch(const HitlistService::ScanOutcome& outcome) {
  auto snap = freeze_epoch(*service_, *world_, outcome.date.index);
  EpochRecord rec;
  rec.epoch = snap->epoch();
  rec.date = snap->info().date;
  rec.input_total = snap->info().input_total;
  rec.scan_targets = snap->info().scan_targets;
  rec.aliased_prefixes = snap->info().aliased_prefixes;
  rec.responsive = snap->info().responsive;
  rec.excluded_total = snap->info().excluded_total;
  rec.digest = snap->digest();
  records_.push_back(std::move(rec));
  if (snaps_ != nullptr) snaps_->publish(std::move(snap));
}

}  // namespace sixdust::serve
