#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hitlist/service.hpp"
#include "serve/snapshot_manager.hpp"

namespace sixdust {
class World;
}

namespace sixdust::serve {

class LiveTelemetry;

/// One published epoch, as the daemon records it — the serve-mode golden
/// surface (schema sixdust-serve-epochs/1). Every field is a pure
/// function of the seeded simulation, so the record stream is
/// byte-identical for any thread count, any scheduling mode, and with or
/// without live query traffic.
struct EpochRecord {
  int epoch = -1;
  std::string date;
  std::uint64_t input_total = 0;
  std::uint64_t scan_targets = 0;
  std::uint64_t aliased_prefixes = 0;
  std::uint64_t responsive = 0;
  std::uint64_t excluded_total = 0;
  std::uint64_t digest = 0;  // EpochSnapshot::digest()

  friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

/// JSON document (sixdust-serve-epochs/1) of a record stream — one line
/// per epoch, digests in hex; the format of tests/golden/serve_epochs.json.
[[nodiscard]] std::string epoch_records_json(
    std::span<const EpochRecord> records);

/// The daemon's epoch barrier: freezes the service into an EpochSnapshot
/// after each step, publishes it through the SnapshotManager, and keeps
/// the per-epoch record stream. Wire its on_epoch() into
/// HitlistService::run()'s epoch hook:
///
///   EpochPublisher pub(&service, &world, &snaps);
///   service.run(world, epochs,
///               [&](const auto& o) { pub.on_epoch(o); });
///
/// The publisher only *reads* service state (from the epoch thread, at
/// the barrier — never concurrently with a step), so a daemon run stays
/// byte-identical to a batch run of the same service.
class EpochPublisher {
 public:
  /// All pointers borrowed; `snaps` may be null (record-only mode, used
  /// by the differential tests' batch side), and so may `telemetry` (no
  /// freeze/publish duration recording).
  EpochPublisher(const HitlistService* service, const World* world,
                 SnapshotManager* snaps, LiveTelemetry* telemetry = nullptr);

  void on_epoch(const HitlistService::ScanOutcome& outcome);

  [[nodiscard]] const std::vector<EpochRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::string records_json() const {
    return epoch_records_json(records_);
  }

 private:
  const HitlistService* service_;
  const World* world_;
  SnapshotManager* snaps_;
  LiveTelemetry* telemetry_;
  std::vector<EpochRecord> records_;
};

}  // namespace sixdust::serve
