#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sixdust::serve {

namespace {

constexpr int kPollMs = 50;

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::string ListenSpec::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

std::optional<ListenSpec> parse_listen_spec(const std::string& spec) {
  ListenSpec out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = ListenSpec::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty() || out.path.size() >= sizeof(sockaddr_un{}.sun_path))
      return std::nullopt;
    return out;
  }
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  out.kind = ListenSpec::Kind::kTcp;
  out.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  if (port.empty() ||
      port.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  char* end = nullptr;
  const unsigned long v = std::strtoul(port.c_str(), &end, 10);
  if (v > 65535) return std::nullopt;
  out.port = static_cast<std::uint16_t>(v);
  std::string resolved = out.host == "localhost" ? "127.0.0.1" : out.host;
  in_addr probe{};
  if (::inet_pton(AF_INET, resolved.c_str(), &probe) != 1) return std::nullopt;
  out.host = std::move(resolved);
  return out;
}

Server::Server(Config cfg, const SnapshotManager* snaps)
    : cfg_(std::move(cfg)), engine_(snaps, cfg_.metrics) {
  if (cfg_.readers < 1) cfg_.readers = 1;
  engine_.set_telemetry(cfg_.telemetry);
  lane_ticks_.reset(new std::atomic<std::uint64_t>[cfg_.readers]);
  lane_conns_.reset(new std::atomic<std::uint64_t>[cfg_.readers]);
  for (unsigned i = 0; i < cfg_.readers; ++i) {
    lane_ticks_[i].store(0, std::memory_order_relaxed);
    lane_conns_[i].store(0, std::memory_order_relaxed);
  }
  if (cfg_.metrics != nullptr) {
    connections_ =
        &cfg_.metrics->counter("serve.connections", Stability::kVolatile);
    bytes_in_ = &cfg_.metrics->counter("serve.bytes_in", Stability::kVolatile);
    bytes_out_ =
        &cfg_.metrics->counter("serve.bytes_out", Stability::kVolatile);
  }
  inbox_m_.reserve(cfg_.readers);
  inbox_.resize(cfg_.readers);
  for (unsigned i = 0; i < cfg_.readers; ++i)
    inbox_m_.push_back(std::make_unique<std::mutex>());
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (cfg_.listen.kind == ListenSpec::Kind::kUnix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.listen.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.listen.path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind " + cfg_.listen.path);
    unix_path_ = cfg_.listen.path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.listen.port);
    if (::inet_pton(AF_INET, cfg_.listen.host.c_str(), &addr.sin_addr) != 1)
      return fail("bad host " + cfg_.listen.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind " + cfg_.listen.str());
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  // Non-blocking accepts: lane 0 drains every pending connection per
  // POLLIN wakeup and must not block once the backlog is empty.
  ::fcntl(listen_fd_, F_SETFL,
          ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  // Host the lanes. On the shared pool the host thread submits them as one
  // batch and (per the pool contract) helps execute it, so every lane is
  // live even when the pool's workers are busy scanning.
  if (cfg_.pool != nullptr) {
    // sixdust-lint: allow(conc-raw-thread) — the host must outlive
    // start(); it blocks inside pool->run() until stop() flips the flag,
    // so it cannot itself be a pool task.
    host_ = std::thread([this] {
      std::vector<std::function<void()>> lanes;
      for (unsigned r = 0; r < cfg_.readers; ++r)
        lanes.emplace_back([this, r] { lane_loop(r); });
      cfg_.pool->run(std::move(lanes));
    });
  } else {
    for (unsigned r = 1; r < cfg_.readers; ++r)
      lane_threads_.emplace_back([this, r] { lane_loop(r); });
    // sixdust-lint: allow(conc-raw-thread) — no pool configured: the
    // daemon lanes park in poll() and need dedicated threads.
    host_ = std::thread([this] { lane_loop(0); });
  }
  return true;
}

void Server::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (host_.joinable()) host_.join();
  for (auto& t : lane_threads_) t.join();
  lane_threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& inbox : inbox_) {
    for (int fd : inbox) ::close(fd);
    inbox.clear();
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  started_ = false;
}

std::string Server::endpoint() const {
  if (cfg_.listen.kind == ListenSpec::Kind::kUnix) return cfg_.listen.str();
  return cfg_.listen.host + ":" + std::to_string(bound_port_);
}

std::vector<Server::LaneStats> Server::lane_stats() const {
  std::vector<LaneStats> out(cfg_.readers);
  for (unsigned i = 0; i < cfg_.readers; ++i) {
    out[i].ticks = lane_ticks_[i].load(std::memory_order_relaxed);
    out[i].conns = lane_conns_[i].load(std::memory_order_relaxed);
    std::lock_guard lk(*inbox_m_[i]);
    out[i].inbox = inbox_[i].size();
  }
  return out;
}

void Server::accept_ready(unsigned lane) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / EINTR: nothing (more) pending
    if (connections_ != nullptr) connections_->inc();
    const unsigned target = next_lane_;
    next_lane_ = (next_lane_ + 1) % cfg_.readers;
    if (target == lane) {
      // Deal to self without the detour through the inbox.
      std::lock_guard lk(*inbox_m_[lane]);
      inbox_[lane].push_back(fd);
    } else {
      std::lock_guard lk(*inbox_m_[target]);
      inbox_[target].push_back(fd);
    }
  }
}

bool Server::service_conn(Conn& conn) {
  std::uint8_t buf[4096];
  const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
  if (n == 0) return false;  // orderly close
  if (n < 0) return errno == EINTR || errno == EAGAIN;
  if (bytes_in_ != nullptr) bytes_in_->add(static_cast<std::uint64_t>(n));

  bool write_ok = true;
  const bool frames_ok = conn.decoder.feed(
      std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)),
      [&](std::span<const std::uint8_t> body) {
        if (!write_ok) return;
        const std::vector<std::uint8_t> out = engine_.handle(body);
        write_ok = write_all(conn.fd, out.data(), out.size());
        if (write_ok && bytes_out_ != nullptr) bytes_out_->add(out.size());
      });
  if (!frames_ok) {
    // Oversized declared length: the stream is unframeable from here on.
    // One final error frame, then hang up.
    const std::vector<std::uint8_t> out = engine_.error_frame("frame too big");
    (void)write_all(conn.fd, out.data(), out.size());
    return false;
  }
  return write_ok;
}

void Server::lane_loop(unsigned lane) {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    // Heartbeat for the watchdog: a healthy lane returns here at least
    // once per poll timeout.
    lane_ticks_[lane].fetch_add(1, std::memory_order_relaxed);
    // Adopt freshly dealt connections.
    {
      std::lock_guard lk(*inbox_m_[lane]);
      for (int fd : inbox_[lane]) conns.push_back(Conn{fd, FrameDecoder{}});
      inbox_[lane].clear();
    }
    lane_conns_[lane].store(conns.size(), std::memory_order_relaxed);

    fds.clear();
    if (lane == 0)
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) fds.push_back(pollfd{c.fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             kPollMs);
    if (ready <= 0) continue;

    std::size_t fi = 0;
    if (lane == 0) {
      if ((fds[0].revents & POLLIN) != 0) accept_ready(lane);
      fi = 1;
    }
    for (std::size_t ci = 0; ci < conns.size(); ++ci, ++fi) {
      const short ev = fds[fi].revents;
      if (ev == 0) continue;
      bool keep = (ev & (POLLERR | POLLNVAL)) == 0;
      if (keep && (ev & (POLLIN | POLLHUP)) != 0)
        keep = service_conn(conns[ci]);
      if (!keep) {
        ::close(conns[ci].fd);
        conns[ci].fd = -1;
      }
    }
    std::erase_if(conns, [](const Conn& c) { return c.fd < 0; });
  }
  for (const Conn& c : conns) ::close(c.fd);
}

}  // namespace sixdust::serve
