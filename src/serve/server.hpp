#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot_manager.hpp"

namespace sixdust::serve {

class LiveTelemetry;

/// Where to listen/connect: `unix:/path/to.sock` or `host:port` (TCP;
/// IPv4 dotted-quad or `localhost`; port 0 binds an ephemeral port).
struct ListenSpec {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kTcp;
  std::string path;  // unix socket path
  std::string host;  // tcp host
  std::uint16_t port = 0;

  [[nodiscard]] std::string str() const;
};

/// Parse a listen/connect spec; nullopt on a malformed one.
[[nodiscard]] std::optional<ListenSpec> parse_listen_spec(
    const std::string& spec);

/// The query front-end: accepts connections on one listening socket and
/// serves sixdust-serve protocol requests against the SnapshotManager's
/// live epoch.
///
/// Threading: the serve plane is `readers` poll-driven lanes. Lane 0 owns
/// the listening socket and deals new connections round-robin to all
/// lanes; each lane multiplexes its connections with poll() (so a handful
/// of lanes serve many concurrent clients) and answers each complete
/// frame synchronously through the shared QueryEngine. When the service's
/// shared core::ThreadPool is available the lanes run as one long-lived
/// pool batch (dispatched from a private host thread — the pool's
/// caller-participates contract keeps the epoch loop's own nested batches
/// live on the remaining workers); without a pool (--threads 1) the lanes
/// get plain threads. Either way the query path only ever touches
/// immutable snapshots, the engine, and volatile serve.* metrics, so it
/// cannot perturb the deterministic epoch pipeline.
class Server {
 public:
  struct Config {
    ListenSpec listen;
    /// Poll lanes serving connections (>= 1; lane 0 also accepts).
    unsigned readers = 2;
    /// Borrowed; may be null (metrics off).
    MetricsRegistry* metrics = nullptr;
    /// Shared executor to host the lanes on; null = dedicated threads.
    std::shared_ptr<ThreadPool> pool;
    /// Borrowed; may be null (no latency recording). When set, the engine
    /// records a per-op server-side latency sample for every request.
    LiveTelemetry* telemetry = nullptr;
  };

  /// Liveness/queue-depth view of one poll lane, read by the watchdog and
  /// /stats. `ticks` advances on every poll cycle (at least every 50 ms
  /// while the lane is healthy), so a frozen value is a wedged lane.
  struct LaneStats {
    std::uint64_t ticks = 0;
    std::uint64_t conns = 0;  // connections owned by the lane
    std::uint64_t inbox = 0;  // accepted fds waiting to be adopted
  };

  Server(Config cfg, const SnapshotManager* snaps);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + launch the lanes. False (with `*error` set) when the
  /// socket cannot be set up.
  [[nodiscard]] bool start(std::string* error);

  /// Stop accepting, close every connection, join the lanes. Idempotent.
  void stop();

  /// The actual bound endpoint in spec syntax (resolves port 0).
  [[nodiscard]] std::string endpoint() const;
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  /// One entry per reader lane. Safe to call from any thread, including
  /// after stop() (the counters freeze at their final values).
  [[nodiscard]] std::vector<LaneStats> lane_stats() const;

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
  };

  void lane_loop(unsigned lane);
  void accept_ready(unsigned lane);
  /// Drain readable bytes from one connection; false = close it.
  [[nodiscard]] bool service_conn(Conn& conn);

  Config cfg_;
  QueryEngine engine_;
  Counter* connections_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string unix_path_;  // unlink on stop
  std::atomic<bool> stop_{false};
  bool started_ = false;
  // sixdust-lint: allow(conc-raw-thread) — long-lived daemon lanes that
  // park in poll(); see start() for why they cannot be pool tasks.
  std::thread host_;
  // sixdust-lint: allow(conc-raw-thread) — dedicated lanes, no-pool mode.
  std::vector<std::thread> lane_threads_;

  /// Round-robin inboxes of freshly accepted fds, one per lane.
  std::vector<std::unique_ptr<std::mutex>> inbox_m_;
  std::vector<std::vector<int>> inbox_;
  unsigned next_lane_ = 0;

  /// Per-lane liveness counters (see LaneStats). Plain arrays of atomics
  /// sized `readers`, written only by the owning lane.
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_ticks_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> lane_conns_;
};

}  // namespace sixdust::serve
