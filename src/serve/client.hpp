#pragma once

#include <optional>
#include <string>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace sixdust::serve {

/// Blocking single-connection client of the sixdust-serve protocol — the
/// building block of sixdust-loadgen and the end-to-end tests. One client
/// is one socket; it is not thread-safe (the loadgen gives each worker
/// its own).
class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  /// Connect to `spec`, retrying on refusal/absence until `timeout_ms`
  /// elapses (0 = single attempt) — covers the races of a daemon that is
  /// still binding its socket.
  [[nodiscard]] bool connect(const ListenSpec& spec, int timeout_ms = 0);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request body and read the matching response frame. nullopt
  /// on any transport failure or malformed response (the connection is
  /// closed then — the protocol has no resync point).
  [[nodiscard]] std::optional<Response> request(
      std::span<const std::uint8_t> body);

 private:
  int fd_ = -1;
};

}  // namespace sixdust::serve
