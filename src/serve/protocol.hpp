#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ipv6.hpp"
#include "obs/metrics.hpp"
#include "serve/snapshot_manager.hpp"

namespace sixdust::serve {

class LiveTelemetry;

/// The sixdust-serve wire protocol: length-prefixed binary frames over a
/// stream socket (TCP loopback or a Unix domain socket).
///
///   frame    := u32le body_len | body            (body_len = |body|)
///   request  := u8 op | payload
///   response := u8 op | u8 status | u32le epoch | payload
///
/// Every request yields exactly one response on the same connection, in
/// order. The epoch field stamps which published snapshot answered — a
/// client observing it *decrease* on one connection has caught an
/// incoherent swap (the loadgen asserts it never does). Malformed input
/// never kills the server: an undecodable body yields an op=kError
/// response (and a serve.proto_errors bump); a frame whose declared length
/// exceeds kMaxRequestBody poisons only its connection, which sends one
/// final error frame and closes.
inline constexpr std::uint32_t kMaxRequestBody = 512;
/// Responses can carry a full metrics JSON export; cap generously.
inline constexpr std::uint32_t kMaxResponseBody = 4u << 20;
/// Epoch stamp before the first snapshot is published.
inline constexpr std::uint32_t kNoEpoch = 0xffffffffu;

enum class Op : std::uint8_t {
  kLookup = 1,     // payload: 16-byte address -> u8 proto mask
  kOrigin = 2,     // payload: 16-byte address -> 16B base | u8 plen | u32 asn
  kAlias = 3,      // payload: 16-byte address -> u8 covered | [16B | u8 plen]
  kEpochInfo = 4,  // empty -> u32 epoch | 6x u64 counters | u64 digest
  kMetrics = 5,    // empty -> metrics JSON (volatile included)
  kError = 0x7f,   // response-only: payload = ASCII reason
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,    // well-formed query, no entry in this epoch
  kBadRequest = 2,  // undecodable body / unknown op / wrong payload size
  kNoSnapshot = 3,  // no epoch published yet
};

// --- little-endian scalar helpers -------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_addr(std::vector<std::uint8_t>& out, const Ipv6& a);
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p);
[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p);
[[nodiscard]] Ipv6 get_addr(const std::uint8_t* p);

/// Wrap `body` in a length prefix.
[[nodiscard]] std::vector<std::uint8_t> frame(
    std::span<const std::uint8_t> body);

// --- request builders (client side) -----------------------------------------

[[nodiscard]] std::vector<std::uint8_t> request_lookup(const Ipv6& a);
[[nodiscard]] std::vector<std::uint8_t> request_origin(const Ipv6& a);
[[nodiscard]] std::vector<std::uint8_t> request_alias(const Ipv6& a);
[[nodiscard]] std::vector<std::uint8_t> request_epoch_info();
[[nodiscard]] std::vector<std::uint8_t> request_metrics();

/// A decoded response body.
struct Response {
  Op op = Op::kError;
  Status status = Status::kBadRequest;
  std::uint32_t epoch = kNoEpoch;
  std::vector<std::uint8_t> payload;
};

/// Parse a response *body* (frame prefix already stripped); nullopt when
/// it is not a well-formed response.
[[nodiscard]] std::optional<Response> parse_response(
    std::span<const std::uint8_t> body);

/// Incremental splitter of a length-prefixed byte stream into frame
/// bodies. feed() buffers partial input (a truncated frame simply waits
/// for more bytes) and invokes `sink` once per completed body, in order.
/// A declared length above the limit marks the decoder dead — feed()
/// returns false, the stream can no longer be trusted, and the server
/// answers with one error frame and closes the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_body = kMaxRequestBody)
      : max_body_(max_body) {}

  bool feed(std::span<const std::uint8_t> data,
            const std::function<void(std::span<const std::uint8_t>)>& sink);

  [[nodiscard]] bool dead() const { return dead_; }
  /// Bytes buffered mid-frame (a truncated frame in flight).
  [[nodiscard]] std::size_t pending() const { return buf_.size(); }

 private:
  std::uint32_t max_body_;
  std::vector<std::uint8_t> buf_;
  bool dead_ = false;
};

/// Stateless request dispatcher shared by every reader lane (and driven
/// directly by the fuzz tests, no socket required). handle() never throws
/// and never crashes on hostile input: every malformed body produces a
/// clean error *frame* and a serve.proto_errors increment.
class QueryEngine {
 public:
  /// Both pointers are borrowed; `metrics` may be null (no accounting,
  /// kMetrics then answers with an empty export).
  QueryEngine(const SnapshotManager* snaps, MetricsRegistry* metrics);

  /// Request body in, complete response frame (length prefix included)
  /// out.
  [[nodiscard]] std::vector<std::uint8_t> handle(
      std::span<const std::uint8_t> body) const;

  /// Attach the live telemetry plane (borrowed; may be null = recording
  /// off). With it set, handle() times itself and records one server-side
  /// per-op latency sample per request.
  void set_telemetry(LiveTelemetry* telemetry) { telemetry_ = telemetry; }

  /// An op=kError response frame carrying `reason` (also counted as a
  /// protocol error) — the final frame of a poisoned connection.
  [[nodiscard]] std::vector<std::uint8_t> error_frame(
      std::string_view reason) const;

 private:
  [[nodiscard]] std::vector<std::uint8_t> respond(
      Op op, Status status, std::uint32_t epoch,
      std::span<const std::uint8_t> payload) const;
  [[nodiscard]] std::vector<std::uint8_t> handle_impl(
      std::span<const std::uint8_t> body) const;

  const SnapshotManager* snaps_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  LiveTelemetry* telemetry_ = nullptr;
  Counter* proto_errors_ = nullptr;
  Counter* req_lookup_ = nullptr;
  Counter* req_origin_ = nullptr;
  Counter* req_alias_ = nullptr;
  Counter* req_epoch_ = nullptr;
  Counter* req_metrics_ = nullptr;
};

}  // namespace sixdust::serve
