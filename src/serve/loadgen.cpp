#include "serve/loadgen.hpp"

// sixdust-lint: allow-file(det-wallclock) — the load generator measures
// real client-observed latency over real sockets; nothing here feeds the
// stable output surface.
// sixdust-lint: allow-file(conc-raw-thread) — loadgen connections are
// blocking-socket clients driven to a fixed request count; the shared
// pool is for simulation work, not for client I/O that parks in recv().

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "netbase/rng.hpp"
#include "serve/client.hpp"

namespace sixdust::serve {

namespace {

/// Per-connection tally, merged under a mutex at thread exit.
struct ConnStats {
  std::uint64_t sent = 0, ok = 0, not_found = 0, dropped = 0, incoherent = 0;
  std::uint32_t first_epoch = kNoEpoch;
  std::uint32_t last_epoch = kNoEpoch;
  std::vector<std::uint32_t> epochs;  // distinct, in observation order
  std::vector<std::uint64_t> lat_us;
};

Ipv6 workload_addr(Rng& rng) {
  // Cluster the hi word into a handful of /32-ish bands (so LPM lookups
  // descend into populated parts of the tables) and randomize the rest.
  static constexpr std::uint64_t kBands[] = {
      0x2001'0db8'0000'0000ULL, 0x2a01'0000'0000'0000ULL,
      0x2400'0000'0000'0000ULL, 0x2600'0000'0000'0000ULL};
  const std::uint64_t band = kBands[rng.below(4)];
  const std::uint64_t hi = band | (rng.next() & 0x0000'0000'ffff'ffffULL);
  return Ipv6::from_words(hi, rng.next());
}

void run_conn(const LoadgenConfig& cfg, unsigned id, ConnStats* stats) {
  Client client;
  if (!client.connect(cfg.target, cfg.connect_timeout_ms)) return;
  Rng rng(cfg.seed * 7919 + id);
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    const unsigned roll = static_cast<unsigned>(rng.below(100));
    std::vector<std::uint8_t> req;
    bool expects_payload_op = true;
    if (roll < cfg.pct_lookup) {
      req = request_lookup(workload_addr(rng));
    } else if (roll < cfg.pct_lookup + cfg.pct_origin) {
      req = request_origin(workload_addr(rng));
    } else if (roll < cfg.pct_lookup + cfg.pct_origin + cfg.pct_alias) {
      req = request_alias(workload_addr(rng));
    } else {
      req = request_epoch_info();
      expects_payload_op = false;
    }
    (void)expects_payload_op;

    const auto t0 = std::chrono::steady_clock::now();
    const auto resp = client.request(req);
    const auto t1 = std::chrono::steady_clock::now();
    ++stats->sent;
    if (!resp) {
      ++stats->dropped;
      // The connection is gone; reconnecting would blur the epoch
      // monotonicity check, so this worker retires.
      break;
    }
    stats->lat_us.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    if (resp->op == Op::kError) {
      ++stats->incoherent;  // server rejected a well-formed request
      continue;
    }
    if (resp->status == Status::kOk)
      ++stats->ok;
    else
      ++stats->not_found;
    if (resp->epoch != kNoEpoch) {
      if (stats->first_epoch == kNoEpoch) stats->first_epoch = resp->epoch;
      if (stats->last_epoch != kNoEpoch && resp->epoch < stats->last_epoch)
        ++stats->incoherent;  // epoch went backwards on one connection
      if (stats->epochs.empty() || stats->epochs.back() != resp->epoch)
        stats->epochs.push_back(resp->epoch);
      stats->last_epoch = resp->epoch;
    }
  }
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1, (sorted.size() * static_cast<std::size_t>(pct)) / 100);
  return sorted[idx];
}

}  // namespace

std::string LoadgenReport::str() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "requests=%llu ok=%llu not_found=%llu dropped=%llu incoherent=%llu\n"
      "epochs: first=%d last=%d distinct=%u\n"
      "latency: p50=%lluus p95=%lluus p99=%lluus\n"
      "throughput: %.0f queries/sec over %.2fs\n",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(incoherent),
      first_epoch == kNoEpoch ? -1 : static_cast<int>(first_epoch),
      last_epoch == kNoEpoch ? -1 : static_cast<int>(last_epoch), epochs_seen,
      static_cast<unsigned long long>(p50_us),
      static_cast<unsigned long long>(p95_us),
      static_cast<unsigned long long>(p99_us), qps, seconds);
  return buf;
}

std::string LoadgenReport::json() const {
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"schema\":\"sixdust-loadgen/1\",\"sent\":%llu,\"ok\":%llu,"
      "\"not_found\":%llu,\"dropped\":%llu,\"incoherent\":%llu,"
      "\"first_epoch\":%d,\"last_epoch\":%d,\"epochs_seen\":%u,"
      "\"p50_us\":%llu,\"p95_us\":%llu,\"p99_us\":%llu,"
      "\"qps\":%.1f,\"seconds\":%.3f}\n",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(incoherent),
      first_epoch == kNoEpoch ? -1 : static_cast<int>(first_epoch),
      last_epoch == kNoEpoch ? -1 : static_cast<int>(last_epoch), epochs_seen,
      static_cast<unsigned long long>(p50_us),
      static_cast<unsigned long long>(p95_us),
      static_cast<unsigned long long>(p99_us), qps, seconds);
  return buf;
}

bool run_loadgen(const LoadgenConfig& cfg, LoadgenReport* report,
                 std::string* error) {
  // Probe the endpoint once up front so an unreachable server fails fast
  // and unambiguously.
  {
    Client probe;
    if (!probe.connect(cfg.target, cfg.connect_timeout_ms)) {
      if (error != nullptr)
        *error = "cannot connect to " + cfg.target.str();
      return false;
    }
  }

  const unsigned n = std::max(1u, cfg.concurrency);
  std::vector<ConnStats> stats(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < n; ++i)
    workers.emplace_back(run_conn, std::cref(cfg), i, &stats[i]);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();

  LoadgenReport out;
  std::vector<std::uint64_t> all_lat;
  std::vector<std::uint32_t> distinct;
  for (const ConnStats& s : stats) {
    out.sent += s.sent;
    out.ok += s.ok;
    out.not_found += s.not_found;
    out.dropped += s.dropped;
    out.incoherent += s.incoherent;
    if (s.first_epoch != kNoEpoch &&
        (out.first_epoch == kNoEpoch || s.first_epoch < out.first_epoch))
      out.first_epoch = s.first_epoch;
    if (s.last_epoch != kNoEpoch &&
        (out.last_epoch == kNoEpoch || s.last_epoch > out.last_epoch))
      out.last_epoch = s.last_epoch;
    distinct.insert(distinct.end(), s.epochs.begin(), s.epochs.end());
    all_lat.insert(all_lat.end(), s.lat_us.begin(), s.lat_us.end());
  }
  std::sort(distinct.begin(), distinct.end());
  out.epochs_seen = static_cast<unsigned>(
      std::unique(distinct.begin(), distinct.end()) - distinct.begin());
  std::sort(all_lat.begin(), all_lat.end());
  out.p50_us = percentile(all_lat, 50);
  out.p95_us = percentile(all_lat, 95);
  out.p99_us = percentile(all_lat, 99);
  out.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  out.qps = out.seconds > 0 ? static_cast<double>(out.sent) / out.seconds : 0;
  if (report != nullptr) *report = out;
  return true;
}

}  // namespace sixdust::serve
