#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"

namespace sixdust::serve {

/// RCU-style publication point between the epoch loop and the query
/// readers.
///
/// The epoch thread freezes the world into an EpochSnapshot at each epoch
/// barrier and publish()es it; readers current() the live snapshot and
/// hold it by shared_ptr for as long as one query needs it. The swap is a
/// pointer exchange under a mutex whose critical section is exactly one
/// shared_ptr copy — the mutex hands the release/acquire edge to the
/// reader, so a reader that observes the new pointer observes every byte
/// of the fully-built snapshot behind it, and a reader still holding the
/// old pointer keeps the old epoch alive until its reference drops —
/// in-flight queries drain on the epoch they started on, nobody blocks
/// past the copy, and the retired snapshot frees itself (outside the
/// lock) when the last reader lets go (see DESIGN.md §13). libstdc++'s
/// std::atomic<shared_ptr> would buy nothing here: it is itself a lock
/// bit spun on inside the control word, with the added cost of being
/// opaque to TSan.
///
/// All serve.* metrics are volatile: the serving plane is wall-clock and
/// client-driven territory, so none of it may leak into the stable
/// (deterministic, thread-invariant) export surface that the daemon must
/// share byte-for-byte with a batch run.
class SnapshotManager {
 public:
  /// `metrics` is borrowed and may be null (no accounting).
  explicit SnapshotManager(MetricsRegistry* metrics = nullptr);

  /// Swap `snap` in as the current epoch. Epoch-thread only (publication
  /// order is the epoch order); readers may call current() concurrently.
  void publish(std::shared_ptr<const EpochSnapshot> snap);

  /// The live snapshot, or null before the first publish(). The returned
  /// shared_ptr pins the epoch: hold it for the duration of one query (or
  /// one coherent group of lookups), then drop it.
  [[nodiscard]] std::shared_ptr<const EpochSnapshot> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cur_;
  }

  /// Epochs published so far (monotonic).
  [[nodiscard]] std::uint64_t published() const {
    return published_count_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const EpochSnapshot> cur_;
  std::atomic<std::uint64_t> published_count_{0};
  MetricsRegistry* metrics_ = nullptr;
  Counter* swaps_ = nullptr;
  Gauge* current_epoch_ = nullptr;
  Gauge* responsive_size_ = nullptr;
};

}  // namespace sixdust::serve
