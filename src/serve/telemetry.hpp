#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/latency_histogram.hpp"
#include "obs/timeseries.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/snapshot_manager.hpp"

namespace sixdust::serve {

/// Latency lane of a protocol op: one LatencyHistogram per request kind,
/// with everything malformed/unknown pooled under kError.
enum class OpLane : unsigned {
  kLookup = 0,
  kOrigin,
  kAlias,
  kEpochInfo,
  kMetrics,
  kError,
  kCount,
};

[[nodiscard]] OpLane op_lane(Op op) noexcept;
[[nodiscard]] const char* op_lane_name(OpLane lane) noexcept;

/// What the watchdog currently thinks. Healthy means: no reader lane has
/// stopped draining, and the most recent epoch swap finished inside its
/// budget. `reasons` spells out every failing check.
struct WatchdogVerdict {
  bool healthy = true;
  std::vector<std::string> reasons;

  [[nodiscard]] std::string json() const;
};

/// The daemon's live telemetry plane (DESIGN.md §15): per-op server-side
/// latency histograms, per-epoch freeze/publish/drain durations, a
/// TimeSeriesRecorder sampling the full metrics registry, a watchdog, and
/// the /stats //healthz /timeseries payload builders for the HTTP scrape
/// endpoint.
///
/// Split of responsibilities:
///   - recording (record_query / record_freeze / record_publish) happens
///     on the hot paths — reader lanes and the epoch thread — and is
///     wait-free except for the rare slow-query log append;
///   - tick() runs the periodic work (time-series sample, watchdog
///     checks, atomic --metrics-out rewrite) either on the internal
///     sampler thread (start()/stop()) or driven directly by tests with
///     synthetic timestamps;
///   - the stats_json()/healthz()/timeseries_jsonl() readers assemble
///     exports from snapshots and may be called from any thread.
///
/// Everything in here is wall-clock, client- and scheduler-driven —
/// volatile territory by definition. No stable metric is ever registered
/// or touched from this file, which is what keeps the batch-vs-daemon
/// differential byte-identical with the full plane enabled.
class LiveTelemetry {
 public:
  struct Config {
    /// All borrowed; any may be null (the matching block goes dark).
    MetricsRegistry* metrics = nullptr;
    const SnapshotManager* snaps = nullptr;

    /// Time-series sampling interval; 0 disables the recorder (watchdog
    /// checks then ride on the metrics rewrite interval, if any).
    std::uint64_t sample_interval_ms = 1000;
    std::size_t timeseries_capacity = 512;

    /// Periodic atomic rewrite of the metrics JSON export (write temp +
    /// rename); empty path or 0 interval disables it.
    std::string metrics_out;
    std::uint64_t metrics_interval_ms = 0;

    /// Watchdog thresholds.
    std::uint64_t slow_query_us = 10'000;
    std::uint64_t epoch_swap_budget_ms = 5'000;
    std::uint64_t lane_stall_ms = 2'000;

    /// JSONL slow-query log (appended); empty = in-memory ring only.
    std::string slow_query_log;
  };

  explicit LiveTelemetry(Config cfg);
  ~LiveTelemetry();
  LiveTelemetry(const LiveTelemetry&) = delete;
  LiveTelemetry& operator=(const LiveTelemetry&) = delete;

  /// Lane stats source for the watchdog and /stats (borrowed; may stay
  /// null). Set before start().
  void set_server(const Server* server) { server_ = server; }

  // --- hot-path recording ---------------------------------------------------

  /// One served request: op + time spent inside QueryEngine::handle().
  void record_query(Op op, std::uint64_t ns);
  /// Epoch freeze duration (epoch thread, at the barrier).
  void record_freeze(std::uint64_t ns);
  /// Epoch publish duration; `superseded` is the snapshot this publish
  /// replaced (its drain — how long readers keep it alive — is tracked
  /// until the last reference drops).
  void record_publish(int epoch, std::uint64_t ns,
                      std::shared_ptr<const EpochSnapshot> superseded);

  // --- periodic work --------------------------------------------------------

  /// Launch the sampler thread; no-op when both intervals are 0. False
  /// (with *error set) when the slow-query log cannot be opened.
  [[nodiscard]] bool start(std::string* error);
  void stop();

  /// One sampler step at `now_ms`: time-series sample + watchdog checks +
  /// metrics rewrite, each when due by its own interval. Tests drive this
  /// directly with synthetic clocks.
  void tick(std::uint64_t now_ms);

  // --- exports --------------------------------------------------------------

  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] std::string timeseries_jsonl() const {
    return timeseries_.jsonl();
  }
  [[nodiscard]] WatchdogVerdict verdict() const;

  [[nodiscard]] LatencySnapshot op_snapshot(OpLane lane) const {
    return op_lat_[static_cast<unsigned>(lane)].snapshot();
  }
  [[nodiscard]] const TimeSeriesRecorder& timeseries() const {
    return timeseries_;
  }
  [[nodiscard]] std::uint64_t slow_query_count() const {
    return slow_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epoch_overruns() const {
    return overruns_.load(std::memory_order_relaxed);
  }

 private:
  struct SlowQuery {
    std::uint64_t t_ms = 0;
    OpLane lane = OpLane::kError;
    std::uint64_t us = 0;
  };
  struct PendingDrain {
    std::weak_ptr<const EpochSnapshot> snap;
    int epoch = -1;
    std::uint64_t superseded_at_ms = 0;
  };

  void note_slow(OpLane lane, std::uint64_t ns);
  void check_lanes(std::uint64_t now_ms);
  void check_drains(std::uint64_t now_ms);
  void rewrite_metrics();

  Config cfg_;
  const Server* server_ = nullptr;

  std::array<LatencyHistogram, static_cast<unsigned>(OpLane::kCount)> op_lat_;
  LatencyHistogram freeze_lat_;
  LatencyHistogram publish_lat_;
  LatencyHistogram drain_lat_;  // ms resolution is enough; stored as ns

  TimeSeriesRecorder timeseries_;

  // Registered volatile counters (null when metrics off).
  Counter* samples_ = nullptr;
  Counter* metrics_writes_ = nullptr;
  Counter* write_errors_ = nullptr;
  Counter* slow_queries_ = nullptr;
  Counter* overruns_ctr_ = nullptr;
  Counter* lane_stalls_ctr_ = nullptr;

  // Watchdog + epoch bookkeeping.
  std::atomic<std::uint64_t> slow_count_{0};
  std::atomic<std::uint64_t> overruns_{0};
  std::atomic<bool> last_swap_overrun_{false};
  std::atomic<std::uint64_t> last_freeze_ns_{0};
  std::atomic<std::uint64_t> last_publish_ns_{0};
  std::atomic<std::int64_t> last_epoch_{-1};
  std::atomic<std::uint64_t> last_publish_ms_{0};
  std::uint64_t created_ms_ = 0;

  mutable std::mutex slow_m_;
  std::deque<SlowQuery> slow_ring_;
  std::FILE* slow_file_ = nullptr;

  mutable std::mutex wd_m_;
  std::vector<std::uint64_t> lane_last_ticks_;
  std::vector<std::uint64_t> lane_last_change_ms_;
  std::vector<bool> lane_stalled_;
  std::vector<PendingDrain> drains_;
  std::uint64_t last_sample_ms_ = 0;
  std::uint64_t last_rewrite_ms_ = 0;

  // Sampler thread.
  std::mutex run_m_;
  std::condition_variable run_cv_;
  bool run_stop_ = false;
  bool running_ = false;
  // sixdust-lint: allow(conc-raw-thread) — the sampler parks in a timed
  // condition-variable wait between ticks; it must outlive arbitrary
  // epoch batches, so it cannot be a pool task.
  std::thread sampler_;
};

/// The daemon's scrape routes, shared by sixdust-serve and the tests:
///   /metrics    Prometheus text exposition (volatile included)
///   /stats      LiveTelemetry::stats_json()
///   /healthz    200 "ok" when healthy, 503 + verdict JSON when not
///   /timeseries sixdust-timeseries/1 JSONL
/// `metrics` and `telemetry` are borrowed and may be null (their routes
/// then answer 404).
[[nodiscard]] HttpServer::Handler scrape_handler(MetricsRegistry* metrics,
                                                 LiveTelemetry* telemetry);

}  // namespace sixdust::serve
