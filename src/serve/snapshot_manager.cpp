#include "serve/snapshot_manager.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace sixdust::serve {

SnapshotManager::SnapshotManager(MetricsRegistry* metrics)
    : metrics_(metrics) {
  if (metrics_ == nullptr) return;
  swaps_ = &metrics_->counter("serve.epoch_swaps", Stability::kVolatile);
  current_epoch_ = &metrics_->gauge("serve.current_epoch",
                                    Stability::kVolatile);
  responsive_size_ = &metrics_->gauge("serve.snapshot_responsive",
                                      Stability::kVolatile);
}

void SnapshotManager::publish(std::shared_ptr<const EpochSnapshot> snap) {
  Span span = trace_span(metrics_, "serve.epoch_swap", SpanCat::kService,
                         Stability::kVolatile);
  if (snap != nullptr) {
    span.attr("epoch", snap->epoch())
        .attr("responsive", snap->info().responsive);
    if (current_epoch_ != nullptr)
      current_epoch_->set(snap->epoch());
    if (responsive_size_ != nullptr)
      responsive_size_->set(static_cast<std::int64_t>(snap->info().responsive));
  }
  std::shared_ptr<const EpochSnapshot> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::exchange(cur_, std::move(snap));
  }
  published_count_.fetch_add(1, std::memory_order_relaxed);
  if (swaps_ != nullptr) swaps_->inc();
}

}  // namespace sixdust::serve
