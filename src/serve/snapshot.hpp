#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asdb/rib.hpp"
#include "netbase/frozen_lpm.hpp"
#include "proto/types.hpp"

namespace sixdust {
class HitlistService;
class World;
}  // namespace sixdust

namespace sixdust::serve {

/// Immutable view of the hitlist world as of one completed scan epoch —
/// the unit the daemon publishes and every query resolves against.
///
/// A snapshot is deeply immutable after construction (the responsive table
/// is sorted, the aliased set is a FrozenLpm, the RIB pointer refers to
/// the world's frozen RIB), so any number of reader threads may query one
/// concurrently without synchronization — the same contract as FrozenLpm
/// (DESIGN.md §8). Epoch isolation comes from never mutating a snapshot:
/// the next epoch freezes a new one and swaps it in (see SnapshotManager).
class EpochSnapshot {
 public:
  struct Info {
    int epoch = -1;           // scan index that produced this snapshot
    std::string date;         // ScanDate::str() of that scan
    std::uint64_t input_total = 0;
    std::uint64_t scan_targets = 0;
    std::uint64_t aliased_prefixes = 0;
    std::uint64_t responsive = 0;
    std::uint64_t excluded_total = 0;
  };

  /// `responsive` must be sorted by address (History::Entry order); `rib`
  /// is borrowed and must outlive the snapshot (the world owns it).
  EpochSnapshot(Info info,
                std::vector<std::pair<Ipv6, ProtoMask>> responsive,
                const std::vector<Prefix>& aliased, const Rib* rib);

  [[nodiscard]] const Info& info() const { return info_; }
  [[nodiscard]] int epoch() const { return info_.epoch; }

  /// Per-protocol responsiveness mask of `a` in this epoch, if responsive.
  [[nodiscard]] std::optional<ProtoMask> lookup(const Ipv6& a) const;

  /// True when `a` falls inside an aliased (fully-responsive) prefix.
  [[nodiscard]] bool alias_covers(const Ipv6& a) const {
    return aliased_.covers(a);
  }
  /// The covering aliased prefix, if any.
  [[nodiscard]] std::optional<Prefix> alias_prefix(const Ipv6& a) const;

  /// Most-specific announced route covering `a` (origin AS lookup).
  [[nodiscard]] std::optional<Rib::Route> origin(const Ipv6& a) const {
    return rib_ == nullptr ? std::nullopt : rib_->route(a);
  }

  [[nodiscard]] const std::vector<std::pair<Ipv6, ProtoMask>>& responsive()
      const {
    return responsive_;
  }
  [[nodiscard]] const std::vector<Prefix>& aliased_prefixes() const {
    return aliased_.prefixes();
  }

  /// FNV-1a fingerprint of the full snapshot contents (info counters,
  /// responsive table, aliased prefixes) — a pure function of the seeded
  /// simulation. The differential tests compare daemon-vs-batch epochs by
  /// digest, and readers of a live daemon verify they are looking at one
  /// coherent epoch by recomputing it (see content_digest()).
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

  /// Recompute the digest from current contents. Equal to digest() by
  /// construction; the concurrency tests call this from reader threads to
  /// prove a swapped-in snapshot is never observed half-built.
  [[nodiscard]] std::uint64_t content_digest() const;

 private:
  Info info_;
  std::vector<std::pair<Ipv6, ProtoMask>> responsive_;
  FrozenLpm<std::uint8_t> aliased_;
  const Rib* rib_ = nullptr;
  std::uint64_t digest_ = 0;
};

/// Freeze the service's state into a self-contained snapshot. Call at the
/// epoch barrier — after step() folded every stage of scan `outcome.date`
/// — from the epoch thread only (it reads service state the next step
/// mutates). The snapshot shares nothing mutable with the service.
[[nodiscard]] std::shared_ptr<const EpochSnapshot> freeze_epoch(
    const HitlistService& service, const World& world, int epoch);

}  // namespace sixdust::serve
