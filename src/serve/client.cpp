#include "serve/client.hpp"

// sixdust-lint: allow-file(det-wallclock) — connect/read deadlines on a
// real socket need a real clock; the client never produces stable output.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sixdust::serve {

namespace {

int connect_once(const ListenSpec& spec) {
  if (spec.kind == ListenSpec::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(spec.port);
  if (::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr) == 1 &&
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
    return fd;
  ::close(fd);
  return -1;
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, out, n);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool Client::connect(const ListenSpec& spec, int timeout_ms) {
  close();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    fd_ = connect_once(spec);
    if (fd_ >= 0) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Response> Client::request(std::span<const std::uint8_t> body) {
  if (fd_ < 0) return std::nullopt;
  const std::vector<std::uint8_t> out = frame(body);
  if (!write_all(fd_, out.data(), out.size())) {
    close();
    return std::nullopt;
  }
  std::uint8_t lenbuf[4];
  if (!read_exact(fd_, lenbuf, 4)) {
    close();
    return std::nullopt;
  }
  const std::uint32_t len = get_u32(lenbuf);
  if (len > kMaxResponseBody) {
    close();
    return std::nullopt;
  }
  std::vector<std::uint8_t> resp(len);
  if (len > 0 && !read_exact(fd_, resp.data(), len)) {
    close();
    return std::nullopt;
  }
  auto parsed = parse_response(resp);
  if (!parsed) close();
  return parsed;
}

}  // namespace sixdust::serve
