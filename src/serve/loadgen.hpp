#pragma once

#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace sixdust::serve {

/// Workload driver against a live sixdust-serve endpoint: `concurrency`
/// client threads, each on its own connection, replaying a seeded op mix
/// (lookups biased toward addresses near announced space, plus origin /
/// alias / epoch-info probes) while timing every request.
struct LoadgenConfig {
  ListenSpec target;
  unsigned concurrency = 4;
  /// Requests per connection.
  std::uint64_t requests = 1000;
  std::uint64_t seed = 1;
  /// Keep retrying the initial connect for this long (ms; 0 = one shot).
  int connect_timeout_ms = 0;
  /// Op mix in percent; the remainder (of 100) is epoch-info.
  unsigned pct_lookup = 70;
  unsigned pct_origin = 15;
  unsigned pct_alias = 10;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;         // status kOk
  std::uint64_t not_found = 0;  // status kNotFound / kNoSnapshot
  /// Transport failures / unparsable responses — "dropped".
  std::uint64_t dropped = 0;
  /// Protocol-coherence violations: error responses to well-formed
  /// requests, or the stamped epoch going *backwards* on one connection.
  std::uint64_t incoherent = 0;
  std::uint32_t first_epoch = kNoEpoch;
  std::uint32_t last_epoch = kNoEpoch;
  /// Distinct epochs observed across all connections.
  unsigned epochs_seen = 0;
  double seconds = 0;
  double qps = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;

  [[nodiscard]] std::string str() const;

  /// Machine-readable summary (schema sixdust-loadgen/1) for CI and the
  /// latency-agreement tests — same numbers as str(), as one JSON object.
  [[nodiscard]] std::string json() const;
};

/// Run the workload. False (with `*error` set) when no connection could
/// be established at all; a report is produced otherwise, even if some
/// requests failed mid-run (see the dropped/incoherent counters).
[[nodiscard]] bool run_loadgen(const LoadgenConfig& cfg, LoadgenReport* report,
                               std::string* error);

}  // namespace sixdust::serve
