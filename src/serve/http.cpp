#include "serve/http.hpp"

// sixdust-lint: allow-file(det-wallclock) — the scrape plane fronts real
// sockets: connect retries and read deadlines in http_get() need a real
// clock. Nothing here feeds the stable export surface.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace sixdust::serve {

namespace {

constexpr int kPollMs = 50;

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

bool token_is_sane(std::string_view t) {
  if (t.empty()) return false;
  for (const char c : t)
    if (static_cast<unsigned char>(c) < 0x21 ||
        static_cast<unsigned char>(c) > 0x7e)
      return false;
  return true;
}

}  // namespace

std::optional<HttpRequest> parse_http_request_line(std::string_view line) {
  // Strip one trailing CRLF / LF if the caller handed us the raw line.
  if (!line.empty() && line.back() == '\n') line.remove_suffix(1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;

  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);

  if (!token_is_sane(method) || !token_is_sane(target)) return std::nullopt;
  if (version.rfind("HTTP/", 0) != 0 || version.size() < 8 ||
      version.size() > 10)
    return std::nullopt;
  if (target[0] != '/') return std::nullopt;

  const std::size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);

  HttpRequest out;
  out.method.assign(method);
  out.path.assign(target);
  return out;
}

std::string render_http_response(const HttpResponse& r) {
  std::string out = "HTTP/1.0 " + std::to_string(r.status) + " " +
                    status_reason(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

HttpServer::HttpServer(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.readers < 1) cfg_.readers = 1;
  if (cfg_.max_request_bytes < 64) cfg_.max_request_bytes = 64;
  if (cfg_.metrics != nullptr) {
    requests_ =
        &cfg_.metrics->counter("serve.http.requests", Stability::kVolatile);
    bad_requests_ = &cfg_.metrics->counter("serve.http.bad_requests",
                                           Stability::kVolatile);
    rejected_ =
        &cfg_.metrics->counter("serve.http.rejected", Stability::kVolatile);
    bytes_out_ =
        &cfg_.metrics->counter("serve.http.bytes_out", Stability::kVolatile);
  }
  inbox_m_.reserve(cfg_.readers);
  inbox_.resize(cfg_.readers);
  for (unsigned i = 0; i < cfg_.readers; ++i)
    inbox_m_.push_back(std::make_unique<std::mutex>());
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (!cfg_.handler) {
    if (error != nullptr) *error = "http server needs a handler";
    return false;
  }

  if (cfg_.listen.kind == ListenSpec::Kind::kUnix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.listen.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.listen.path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind " + cfg_.listen.path);
    unix_path_ = cfg_.listen.path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.listen.port);
    if (::inet_pton(AF_INET, cfg_.listen.host.c_str(), &addr.sin_addr) != 1)
      return fail("bad host " + cfg_.listen.host);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return fail("bind " + cfg_.listen.str());
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  set_nonblocking(listen_fd_);

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  if (cfg_.pool != nullptr) {
    // sixdust-lint: allow(conc-raw-thread) — the host blocks inside
    // pool->run() until stop(); same contract as serve::Server::start().
    host_ = std::thread([this] {
      std::vector<std::function<void()>> lanes;
      for (unsigned r = 0; r < cfg_.readers; ++r)
        lanes.emplace_back([this, r] { lane_loop(r); });
      cfg_.pool->run(std::move(lanes));
    });
  } else {
    for (unsigned r = 1; r < cfg_.readers; ++r)
      lane_threads_.emplace_back([this, r] { lane_loop(r); });
    // sixdust-lint: allow(conc-raw-thread) — no pool configured: scrape
    // lanes park in poll() and need dedicated threads.
    host_ = std::thread([this] { lane_loop(0); });
  }
  return true;
}

void HttpServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (host_.joinable()) host_.join();
  for (auto& t : lane_threads_) t.join();
  lane_threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& inbox : inbox_) {
    for (int fd : inbox) ::close(fd);
    inbox.clear();
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
  started_ = false;
}

std::string HttpServer::endpoint() const {
  if (cfg_.listen.kind == ListenSpec::Kind::kUnix) return cfg_.listen.str();
  return cfg_.listen.host + ":" + std::to_string(bound_port_);
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    if (open_conns_.load(std::memory_order_relaxed) >= cfg_.max_conns) {
      if (rejected_ != nullptr) rejected_->inc();
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    const unsigned target = next_lane_;
    next_lane_ = (next_lane_ + 1) % cfg_.readers;
    {
      std::lock_guard lk(*inbox_m_[target]);
      inbox_[target].push_back(fd);
    }
  }
}

void HttpServer::respond(Conn& conn, const HttpResponse& r) {
  if (r.status >= 400 && bad_requests_ != nullptr) bad_requests_->inc();
  conn.out = render_http_response(r);
  conn.out_off = 0;
  conn.responding = true;
}

bool HttpServer::read_ready(Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n == 0) return false;  // peer gone before a full request
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    break;
  }

  // The cap applies whether or not the blank line has arrived: a request
  // that is already over budget is answered 431 even if its terminator
  // landed in the same read.
  if (conn.in.size() > cfg_.max_request_bytes) {
    respond(conn, HttpResponse{431, "text/plain; charset=utf-8",
                               "headers too large\n"});
    return true;
  }
  const std::size_t head_end = conn.in.find("\r\n\r\n");
  const std::size_t head_end_lf =
      head_end == std::string::npos ? conn.in.find("\n\n") : head_end;
  if (head_end_lf == std::string::npos) return true;

  const std::size_t line_end = conn.in.find('\n');
  const auto req = parse_http_request_line(
      std::string_view(conn.in).substr(0, line_end == std::string::npos
                                              ? conn.in.size()
                                              : line_end + 1));
  if (!req) {
    respond(conn, HttpResponse{400, "text/plain; charset=utf-8",
                               "bad request line\n"});
    return true;
  }
  if (req->method != "GET") {
    respond(conn, HttpResponse{405, "text/plain; charset=utf-8",
                               "only GET is served here\n"});
    return true;
  }
  if (requests_ != nullptr) requests_->inc();
  respond(conn, cfg_.handler(*req));
  return true;
}

bool HttpServer::write_ready(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t w = ::write(conn.fd, conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    conn.out_off += static_cast<std::size_t>(w);
    if (bytes_out_ != nullptr) bytes_out_->add(static_cast<std::uint64_t>(w));
  }
  return false;  // fully flushed: HTTP/1.0 closes after one response
}

void HttpServer::lane_loop(unsigned lane) {
  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard lk(*inbox_m_[lane]);
      for (int fd : inbox_[lane]) conns.push_back(Conn{fd, {}, {}, 0, false});
      inbox_[lane].clear();
    }

    fds.clear();
    if (lane == 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns)
      fds.push_back(
          pollfd{c.fd, static_cast<short>(c.responding ? POLLOUT : POLLIN),
                 0});

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollMs);
    if (ready <= 0) continue;

    std::size_t fi = 0;
    if (lane == 0) {
      if ((fds[0].revents & POLLIN) != 0) accept_ready();
      fi = 1;
    }
    for (std::size_t ci = 0; ci < conns.size(); ++ci, ++fi) {
      Conn& c = conns[ci];
      const short ev = fds[fi].revents;
      if (ev == 0) continue;
      bool keep = (ev & (POLLERR | POLLNVAL)) == 0;
      if (keep && !c.responding && (ev & (POLLIN | POLLHUP)) != 0)
        keep = read_ready(c);
      if (keep && c.responding && (ev & (POLLOUT | POLLIN | POLLHUP)) != 0)
        keep = write_ready(c);
      if (!keep) {
        ::close(c.fd);
        c.fd = -1;
        open_conns_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    std::erase_if(conns, [](const Conn& c) { return c.fd < 0; });
  }
  for (const Conn& c : conns) {
    ::close(c.fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
}

namespace {

int http_connect_once(const ListenSpec& spec) {
  if (spec.kind == ListenSpec::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(spec.port);
  if (::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr) == 1 &&
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
    return fd;
  ::close(fd);
  return -1;
}

}  // namespace

std::optional<HttpGetResult> http_get(const ListenSpec& spec,
                                      const std::string& path, int timeout_ms,
                                      int connect_timeout_ms) {
  int fd = http_connect_once(spec);
  if (fd < 0 && connect_timeout_ms > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(connect_timeout_ms);
    while (fd < 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      fd = http_connect_once(spec);
    }
  }
  if (fd < 0) return std::nullopt;

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: sixdust\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t w = ::write(fd, req.data() + off, req.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(w);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 NNN reason\r\n...\r\n\r\nbody"
  if (raw.rfind("HTTP/", 0) != 0) return std::nullopt;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || raw.size() < sp + 4) return std::nullopt;
  int status = 0;
  for (int i = 0; i < 3; ++i) {
    const char c = raw[sp + 1 + static_cast<std::size_t>(i)];
    if (c < '0' || c > '9') return std::nullopt;
    status = status * 10 + (c - '0');
  }
  std::size_t body_at = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    skip = 2;
  }
  if (body_at == std::string::npos) return std::nullopt;
  HttpGetResult out;
  out.status = status;
  out.body = raw.substr(body_at + skip);
  return out;
}

}  // namespace sixdust::serve
