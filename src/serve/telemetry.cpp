#include "serve/telemetry.hpp"

// sixdust-lint: allow-file(det-wallclock) — the telemetry plane exists to
// watch the daemon in real time: slow-query stamps, epoch age, stall
// detection, and the sampler cadence are all honest wall-clock. Nothing
// here registers or writes a stable metric (see DESIGN.md §15).

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <chrono>

#include "obs/json_mini.hpp"

namespace sixdust::serve {

namespace {

/// Milliseconds since the Unix epoch — the timestamp base of the
/// slow-query log and the time series.
std::uint64_t wall_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void append_u64_field(std::string& out, const char* key, std::uint64_t v,
                      bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%llu%s", key,
                static_cast<unsigned long long>(v), comma ? "," : "");
  out += buf;
}

}  // namespace

OpLane op_lane(Op op) noexcept {
  switch (op) {
    case Op::kLookup: return OpLane::kLookup;
    case Op::kOrigin: return OpLane::kOrigin;
    case Op::kAlias: return OpLane::kAlias;
    case Op::kEpochInfo: return OpLane::kEpochInfo;
    case Op::kMetrics: return OpLane::kMetrics;
    case Op::kError: return OpLane::kError;
  }
  return OpLane::kError;
}

const char* op_lane_name(OpLane lane) noexcept {
  switch (lane) {
    case OpLane::kLookup: return "lookup";
    case OpLane::kOrigin: return "origin";
    case OpLane::kAlias: return "alias";
    case OpLane::kEpochInfo: return "epoch_info";
    case OpLane::kMetrics: return "metrics";
    case OpLane::kError: return "error";
    case OpLane::kCount: break;
  }
  return "error";
}

std::string WatchdogVerdict::json() const {
  std::string out = "{\"healthy\":";
  out += healthy ? "true" : "false";
  out += ",\"reasons\":[";
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    append_json_escaped(out, reasons[i]);
    out += '"';
  }
  out += "]}";
  return out;
}

LiveTelemetry::LiveTelemetry(Config cfg)
    : cfg_(std::move(cfg)),
      timeseries_(TimeSeriesRecorder::Config{cfg_.timeseries_capacity}) {
  created_ms_ = wall_now_ms();
  if (cfg_.metrics != nullptr) {
    samples_ = &cfg_.metrics->counter("serve.telemetry.samples",
                                      Stability::kVolatile);
    metrics_writes_ = &cfg_.metrics->counter("serve.telemetry.metrics_writes",
                                             Stability::kVolatile);
    write_errors_ = &cfg_.metrics->counter("serve.telemetry.write_errors",
                                           Stability::kVolatile);
    slow_queries_ =
        &cfg_.metrics->counter("serve.slow_queries", Stability::kVolatile);
    overruns_ctr_ = &cfg_.metrics->counter("serve.watchdog.epoch_overruns",
                                           Stability::kVolatile);
    lane_stalls_ctr_ = &cfg_.metrics->counter("serve.watchdog.lane_stalls",
                                              Stability::kVolatile);
  }
}

LiveTelemetry::~LiveTelemetry() {
  stop();
  if (slow_file_ != nullptr) {
    std::fclose(slow_file_);
    slow_file_ = nullptr;
  }
}

void LiveTelemetry::record_query(Op op, std::uint64_t ns) {
  const OpLane lane = op_lane(op);
  op_lat_[static_cast<unsigned>(lane)].record(ns);
  if (cfg_.slow_query_us > 0 && ns / 1000 >= cfg_.slow_query_us)
    note_slow(lane, ns);
}

void LiveTelemetry::note_slow(OpLane lane, std::uint64_t ns) {
  slow_count_.fetch_add(1, std::memory_order_relaxed);
  if (slow_queries_ != nullptr) slow_queries_->inc();
  SlowQuery q;
  q.t_ms = wall_now_ms();
  q.lane = lane;
  q.us = ns / 1000;
  std::lock_guard lk(slow_m_);
  slow_ring_.push_back(q);
  while (slow_ring_.size() > 64) slow_ring_.pop_front();
  if (slow_file_ != nullptr) {
    std::fprintf(slow_file_,
                 "{\"t_ms\":%llu,\"op\":\"%s\",\"us\":%llu,"
                 "\"threshold_us\":%llu}\n",
                 static_cast<unsigned long long>(q.t_ms),
                 op_lane_name(q.lane), static_cast<unsigned long long>(q.us),
                 static_cast<unsigned long long>(cfg_.slow_query_us));
    std::fflush(slow_file_);
  }
}

void LiveTelemetry::record_freeze(std::uint64_t ns) {
  freeze_lat_.record(ns);
  last_freeze_ns_.store(ns, std::memory_order_relaxed);
}

void LiveTelemetry::record_publish(
    int epoch, std::uint64_t ns,
    std::shared_ptr<const EpochSnapshot> superseded) {
  publish_lat_.record(ns);
  last_publish_ns_.store(ns, std::memory_order_relaxed);
  last_epoch_.store(epoch, std::memory_order_relaxed);
  const std::uint64_t now = wall_now_ms();
  last_publish_ms_.store(now, std::memory_order_relaxed);

  const std::uint64_t swap_ns =
      last_freeze_ns_.load(std::memory_order_relaxed) + ns;
  const bool overrun = swap_ns > cfg_.epoch_swap_budget_ms * 1'000'000ULL;
  last_swap_overrun_.store(overrun, std::memory_order_relaxed);
  if (overrun) {
    overruns_.fetch_add(1, std::memory_order_relaxed);
    if (overruns_ctr_ != nullptr) overruns_ctr_->inc();
  }

  if (superseded != nullptr) {
    PendingDrain d;
    d.snap = superseded;
    d.epoch = superseded->epoch();
    d.superseded_at_ms = now;
    superseded.reset();  // the weak_ptr alone must not keep the epoch alive
    std::lock_guard lk(wd_m_);
    drains_.push_back(std::move(d));
    if (drains_.size() > 64) drains_.erase(drains_.begin());
  }
}

bool LiveTelemetry::start(std::string* error) {
  if (!cfg_.slow_query_log.empty() && slow_file_ == nullptr) {
    slow_file_ = std::fopen(cfg_.slow_query_log.c_str(), "a");
    if (slow_file_ == nullptr) {
      if (error != nullptr)
        *error = "cannot open slow-query log '" + cfg_.slow_query_log +
                 "': " + std::strerror(errno);
      return false;
    }
  }
  std::uint64_t wake = 0;
  if (cfg_.sample_interval_ms > 0) wake = cfg_.sample_interval_ms;
  if (cfg_.metrics_interval_ms > 0 &&
      (wake == 0 || cfg_.metrics_interval_ms < wake))
    wake = cfg_.metrics_interval_ms;
  if (wake == 0) return true;  // nothing periodic to do

  {
    std::lock_guard lk(run_m_);
    if (running_) return true;
    run_stop_ = false;
    running_ = true;
  }
  // sixdust-lint: allow(conc-raw-thread) — the sampler is daemon plumbing
  // like the serve lanes: it must outlive any pool batch and wake on its
  // own clock, so it cannot ride the cooperative ThreadPool.
  sampler_ = std::thread([this, wake] {
    while (true) {
      {
        std::unique_lock lk(run_m_);
        run_cv_.wait_for(lk, std::chrono::milliseconds(wake));
        if (run_stop_) return;
      }
      tick(wall_now_ms());
    }
  });
  return true;
}

void LiveTelemetry::stop() {
  {
    std::lock_guard lk(run_m_);
    if (!running_) return;
    run_stop_ = true;
  }
  run_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  std::lock_guard lk(run_m_);
  running_ = false;
}

void LiveTelemetry::tick(std::uint64_t now_ms) {
  bool sample_due = false;
  bool rewrite_due = false;
  {
    std::lock_guard lk(wd_m_);
    if (cfg_.sample_interval_ms > 0 &&
        (last_sample_ms_ == 0 ||
         now_ms - last_sample_ms_ >= cfg_.sample_interval_ms)) {
      last_sample_ms_ = now_ms;
      sample_due = true;
    }
    if (cfg_.metrics_interval_ms > 0 && !cfg_.metrics_out.empty() &&
        (last_rewrite_ms_ == 0 ||
         now_ms - last_rewrite_ms_ >= cfg_.metrics_interval_ms)) {
      last_rewrite_ms_ = now_ms;
      rewrite_due = true;
    }
  }
  if (sample_due && cfg_.metrics != nullptr) {
    timeseries_.sample(now_ms, cfg_.metrics->snapshot());
    if (samples_ != nullptr) samples_->inc();
  }
  check_lanes(now_ms);
  check_drains(now_ms);
  if (rewrite_due) rewrite_metrics();
}

void LiveTelemetry::check_lanes(std::uint64_t now_ms) {
  if (server_ == nullptr) return;
  const std::vector<Server::LaneStats> lanes = server_->lane_stats();
  std::lock_guard lk(wd_m_);
  lane_last_ticks_.resize(lanes.size(), 0);
  lane_last_change_ms_.resize(lanes.size(), 0);
  lane_stalled_.resize(lanes.size(), false);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i].ticks != lane_last_ticks_[i] ||
        lane_last_change_ms_[i] == 0) {
      lane_last_ticks_[i] = lanes[i].ticks;
      lane_last_change_ms_[i] = now_ms;
      lane_stalled_[i] = false;
      continue;
    }
    // Never flag a lane that has not run at all yet (ticks still 0): the
    // server may simply not be started.
    const bool stalled =
        lanes[i].ticks > 0 &&
        now_ms - lane_last_change_ms_[i] >= cfg_.lane_stall_ms;
    if (stalled && !lane_stalled_[i]) {
      lane_stalled_[i] = true;
      if (lane_stalls_ctr_ != nullptr) lane_stalls_ctr_->inc();
    }
  }
}

void LiveTelemetry::check_drains(std::uint64_t now_ms) {
  std::lock_guard lk(wd_m_);
  std::erase_if(drains_, [&](const PendingDrain& d) {
    if (!d.snap.expired()) return false;
    const std::uint64_t held_ms = now_ms > d.superseded_at_ms
                                      ? now_ms - d.superseded_at_ms
                                      : 0;
    drain_lat_.record(held_ms * 1'000'000ULL);
    return true;
  });
}

void LiveTelemetry::rewrite_metrics() {
  if (cfg_.metrics == nullptr || cfg_.metrics_out.empty()) return;
  const std::string tmp = cfg_.metrics_out + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  bool ok = f != nullptr;
  if (ok) {
    const std::string json = cfg_.metrics->snapshot().to_json();
    ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = (std::fclose(f) == 0) && ok;
  }
  // The rename is what makes the rewrite atomic: a reader always sees
  // either the previous complete export or the new complete export.
  if (ok) ok = std::rename(tmp.c_str(), cfg_.metrics_out.c_str()) == 0;
  if (ok) {
    if (metrics_writes_ != nullptr) metrics_writes_->inc();
  } else {
    std::remove(tmp.c_str());
    if (write_errors_ != nullptr) write_errors_->inc();
  }
}

WatchdogVerdict LiveTelemetry::verdict() const {
  WatchdogVerdict v;
  {
    std::lock_guard lk(wd_m_);
    for (std::size_t i = 0; i < lane_stalled_.size(); ++i)
      if (lane_stalled_[i])
        v.reasons.push_back("reader lane " + std::to_string(i) +
                            " stopped draining (no poll tick for >= " +
                            std::to_string(cfg_.lane_stall_ms) + " ms)");
  }
  if (last_swap_overrun_.load(std::memory_order_relaxed)) {
    const std::uint64_t swap_ns =
        last_freeze_ns_.load(std::memory_order_relaxed) +
        last_publish_ns_.load(std::memory_order_relaxed);
    v.reasons.push_back(
        "epoch swap overran its budget: " + std::to_string(swap_ns / 1000000) +
        " ms > " + std::to_string(cfg_.epoch_swap_budget_ms) + " ms");
  }
  v.healthy = v.reasons.empty();
  return v;
}

std::string LiveTelemetry::stats_json() const {
  const std::uint64_t now = wall_now_ms();
  std::string out = "{\"schema\":\"sixdust-stats/1\",";
  append_u64_field(out, "now_ms", now);
  append_u64_field(out, "uptime_ms", now > created_ms_ ? now - created_ms_ : 0);

  // Epoch block.
  out += "\"epoch\":{";
  {
    const std::int64_t last = last_epoch_.load(std::memory_order_relaxed);
    const std::uint64_t pub_ms =
        last_publish_ms_.load(std::memory_order_relaxed);
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"current\":%lld,",
                  static_cast<long long>(last));
    out += buf;
    std::uint64_t published = 0;
    if (cfg_.snaps != nullptr) published = cfg_.snaps->published();
    append_u64_field(out, "published", published);
    append_u64_field(out, "age_ms",
                     pub_ms > 0 && now > pub_ms ? now - pub_ms : 0);
    out += "\"freeze\":";
    freeze_lat_.snapshot().append_stats_json(out);
    out += ",\"publish\":";
    publish_lat_.snapshot().append_stats_json(out);
    out += ",\"drain\":";
    drain_lat_.snapshot().append_stats_json(out);
    std::size_t draining = 0;
    {
      std::lock_guard lk(wd_m_);
      draining = drains_.size();
    }
    out += ",";
    append_u64_field(out, "draining", draining, false);
  }
  out += "},";

  // Per-op server-side latency.
  out += "\"ops\":{";
  for (unsigned i = 0; i < static_cast<unsigned>(OpLane::kCount); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += op_lane_name(static_cast<OpLane>(i));
    out += "\":";
    op_lat_[i].snapshot().append_stats_json(out);
  }
  out += "},";

  // Slow queries.
  out += "\"slow_queries\":{";
  append_u64_field(out, "count", slow_count_.load(std::memory_order_relaxed));
  append_u64_field(out, "threshold_us", cfg_.slow_query_us);
  out += "\"recent\":[";
  {
    std::lock_guard lk(slow_m_);
    bool first = true;
    for (const SlowQuery& q : slow_ring_) {
      if (!first) out += ',';
      first = false;
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "{\"t_ms\":%llu,\"op\":\"%s\",\"us\":%llu}",
                    static_cast<unsigned long long>(q.t_ms),
                    op_lane_name(q.lane),
                    static_cast<unsigned long long>(q.us));
      out += buf;
    }
  }
  out += "]},";

  // Reader lanes.
  out += "\"lanes\":[";
  if (server_ != nullptr) {
    const auto lanes = server_->lane_stats();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (i > 0) out += ',';
      out += "{";
      append_u64_field(out, "lane", i);
      append_u64_field(out, "ticks", lanes[i].ticks);
      append_u64_field(out, "conns", lanes[i].conns);
      append_u64_field(out, "inbox", lanes[i].inbox, false);
      out += "}";
    }
  }
  out += "],";

  // Pipeline ring / tile utilization and pool task accounting, summed
  // over every labelled instance in the registry.
  out += "\"rings\":{";
  {
    std::uint64_t full = 0, empty = 0, steps = 0, idle = 0, pushed = 0;
    std::uint64_t pool_tasks = 0, pool_parks = 0;
    if (cfg_.metrics != nullptr) {
      const MetricsSnapshot snap = cfg_.metrics->snapshot();
      for (const MetricSample& m : snap.samples) {
        if (m.kind != MetricKind::kCounter) continue;
        const std::string_view n = m.name;
        if (n.rfind("pipeline.", 0) == 0) {
          if (n.find(".ring_full_stalls") != std::string_view::npos)
            full += m.value;
          else if (n.find(".ring_empty_stalls") != std::string_view::npos)
            empty += m.value;
          else if (n.find(".ring_pushed") != std::string_view::npos)
            pushed += m.value;
          else if (n.find(".tile_steps") != std::string_view::npos)
            steps += m.value;
          else if (n.find(".tile_idle_polls") != std::string_view::npos)
            idle += m.value;
        } else if (n == "pool.tasks") {
          pool_tasks = m.value;
        } else if (n == "pool.worker_parks") {
          pool_parks = m.value;
        }
      }
    }
    append_u64_field(out, "ring_pushed", pushed);
    append_u64_field(out, "ring_full_stalls", full);
    append_u64_field(out, "ring_empty_stalls", empty);
    append_u64_field(out, "tile_steps", steps);
    append_u64_field(out, "tile_idle_polls", idle);
    append_u64_field(out, "pool_tasks", pool_tasks);
    append_u64_field(out, "pool_worker_parks", pool_parks, false);
  }
  out += "},";

  // Watchdog verdict.
  out += "\"watchdog\":";
  {
    const WatchdogVerdict v = verdict();
    out += v.json();
    out.insert(out.size() - 1, ",\"epoch_overruns\":" +
                                   std::to_string(epoch_overruns()) +
                                   ",\"slow_queries\":" +
                                   std::to_string(slow_query_count()));
  }
  out += ",";

  // Time-series tail (most recent samples, oldest first).
  out += "\"timeseries\":{";
  append_u64_field(out, "interval_ms", cfg_.sample_interval_ms);
  append_u64_field(out, "retained", timeseries_.size());
  append_u64_field(out, "total", timeseries_.total_samples());
  out += "\"tail\":[";
  {
    const auto tail = timeseries_.tail(2);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      if (i > 0) out += ',';
      TimeSeriesRecorder::append_sample_json(out, tail[i]);
    }
  }
  out += "]}}";
  return out;
}

HttpServer::Handler scrape_handler(MetricsRegistry* metrics,
                                   LiveTelemetry* telemetry) {
  return [metrics, telemetry](const HttpRequest& req) -> HttpResponse {
    if (req.path == "/metrics" && metrics != nullptr)
      return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                          metrics->snapshot().to_text(true)};
    if (req.path == "/stats" && telemetry != nullptr)
      return HttpResponse{200, "application/json", telemetry->stats_json()};
    if (req.path == "/healthz" && telemetry != nullptr) {
      const WatchdogVerdict v = telemetry->verdict();
      if (v.healthy)
        return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
      return HttpResponse{503, "application/json", v.json() + "\n"};
    }
    if (req.path == "/timeseries" && telemetry != nullptr)
      return HttpResponse{200, "application/x-ndjson",
                          telemetry->timeseries_jsonl()};
    return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  };
}

}  // namespace sixdust::serve
