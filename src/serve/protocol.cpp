#include "serve/protocol.hpp"

#include <chrono>
#include <cstring>

#include "serve/telemetry.hpp"

namespace sixdust::serve {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_addr(std::vector<std::uint8_t>& out, const Ipv6& a) {
  for (int i = 0; i < 16; ++i) out.push_back(a.byte(i));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

Ipv6 get_addr(const std::uint8_t* p) {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) hi = (hi << 8) | p[i];
  for (int i = 8; i < 16; ++i) lo = (lo << 8) | p[i];
  return Ipv6::from_words(hi, lo);
}

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + body.size());
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

namespace {

std::vector<std::uint8_t> addr_request(Op op, const Ipv6& a) {
  std::vector<std::uint8_t> body;
  body.reserve(17);
  body.push_back(static_cast<std::uint8_t>(op));
  put_addr(body, a);
  return body;
}

}  // namespace

std::vector<std::uint8_t> request_lookup(const Ipv6& a) {
  return addr_request(Op::kLookup, a);
}
std::vector<std::uint8_t> request_origin(const Ipv6& a) {
  return addr_request(Op::kOrigin, a);
}
std::vector<std::uint8_t> request_alias(const Ipv6& a) {
  return addr_request(Op::kAlias, a);
}
std::vector<std::uint8_t> request_epoch_info() {
  return {static_cast<std::uint8_t>(Op::kEpochInfo)};
}
std::vector<std::uint8_t> request_metrics() {
  return {static_cast<std::uint8_t>(Op::kMetrics)};
}

std::optional<Response> parse_response(std::span<const std::uint8_t> body) {
  if (body.size() < 6) return std::nullopt;
  Response r;
  switch (body[0]) {
    case static_cast<std::uint8_t>(Op::kLookup):
    case static_cast<std::uint8_t>(Op::kOrigin):
    case static_cast<std::uint8_t>(Op::kAlias):
    case static_cast<std::uint8_t>(Op::kEpochInfo):
    case static_cast<std::uint8_t>(Op::kMetrics):
    case static_cast<std::uint8_t>(Op::kError):
      r.op = static_cast<Op>(body[0]);
      break;
    default:
      return std::nullopt;
  }
  if (body[1] > static_cast<std::uint8_t>(Status::kNoSnapshot))
    return std::nullopt;
  r.status = static_cast<Status>(body[1]);
  r.epoch = get_u32(body.data() + 2);
  r.payload.assign(body.begin() + 6, body.end());
  return r;
}

bool FrameDecoder::feed(
    std::span<const std::uint8_t> data,
    const std::function<void(std::span<const std::uint8_t>)>& sink) {
  if (dead_) return false;
  buf_.insert(buf_.end(), data.begin(), data.end());
  std::size_t off = 0;
  while (buf_.size() - off >= 4) {
    const std::uint32_t len = get_u32(buf_.data() + off);
    if (len > max_body_) {
      dead_ = true;
      buf_.clear();
      return false;
    }
    if (buf_.size() - off - 4 < len) break;  // truncated: wait for more
    sink(std::span<const std::uint8_t>(buf_.data() + off + 4, len));
    off += 4 + len;
  }
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

QueryEngine::QueryEngine(const SnapshotManager* snaps,
                         MetricsRegistry* metrics)
    : snaps_(snaps), metrics_(metrics) {
  if (metrics_ == nullptr) return;
  // Volatile on purpose: request traffic is client-driven, never part of
  // the deterministic (stable) export surface.
  proto_errors_ =
      &metrics_->counter("serve.proto_errors", Stability::kVolatile);
  req_lookup_ =
      &metrics_->counter("serve.requests{op=lookup}", Stability::kVolatile);
  req_origin_ =
      &metrics_->counter("serve.requests{op=origin}", Stability::kVolatile);
  req_alias_ =
      &metrics_->counter("serve.requests{op=alias}", Stability::kVolatile);
  req_epoch_ =
      &metrics_->counter("serve.requests{op=epoch_info}", Stability::kVolatile);
  req_metrics_ =
      &metrics_->counter("serve.requests{op=metrics}", Stability::kVolatile);
}

std::vector<std::uint8_t> QueryEngine::respond(
    Op op, Status status, std::uint32_t epoch,
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> body;
  body.reserve(6 + payload.size());
  body.push_back(static_cast<std::uint8_t>(op));
  body.push_back(static_cast<std::uint8_t>(status));
  put_u32(body, epoch);
  body.insert(body.end(), payload.begin(), payload.end());
  return frame(body);
}

std::vector<std::uint8_t> QueryEngine::error_frame(
    std::string_view reason) const {
  if (proto_errors_ != nullptr) proto_errors_->inc();
  const auto* p = reinterpret_cast<const std::uint8_t*>(reason.data());
  return respond(Op::kError, Status::kBadRequest, kNoEpoch,
                 std::span<const std::uint8_t>(p, reason.size()));
}

std::vector<std::uint8_t> QueryEngine::handle(
    std::span<const std::uint8_t> body) const {
  if (telemetry_ == nullptr) return handle_impl(body);
  // Server-side latency: time exactly the dispatch below, so the /stats
  // quantiles are a strict lower bound on anything a client can observe.
  // sixdust-lint: allow(det-wallclock) — feeds only the volatile
  // telemetry plane, never the stable export surface.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> out = handle_impl(body);
  // sixdust-lint: allow(det-wallclock) — see above.
  const auto t1 = std::chrono::steady_clock::now();
  telemetry_->record_query(
      body.empty() ? Op::kError : static_cast<Op>(body[0]),
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
  return out;
}

std::vector<std::uint8_t> QueryEngine::handle_impl(
    std::span<const std::uint8_t> body) const {
  if (body.empty()) return error_frame("empty request");
  const auto op = static_cast<Op>(body[0]);
  const std::span<const std::uint8_t> payload = body.subspan(1);

  // Pin one epoch for the whole request: every lookup below resolves
  // against this snapshot even if the epoch loop swaps mid-request.
  const std::shared_ptr<const EpochSnapshot> snap =
      snaps_ == nullptr ? nullptr : snaps_->current();
  const std::uint32_t epoch =
      snap == nullptr ? kNoEpoch : static_cast<std::uint32_t>(snap->epoch());

  switch (op) {
    case Op::kLookup: {
      if (payload.size() != 16) return error_frame("lookup wants 16 bytes");
      if (req_lookup_ != nullptr) req_lookup_->inc();
      if (snap == nullptr)
        return respond(op, Status::kNoSnapshot, epoch, {});
      const auto mask = snap->lookup(get_addr(payload.data()));
      if (!mask) return respond(op, Status::kNotFound, epoch, {});
      const std::uint8_t m = *mask;
      return respond(op, Status::kOk, epoch, std::span(&m, 1));
    }
    case Op::kOrigin: {
      if (payload.size() != 16) return error_frame("origin wants 16 bytes");
      if (req_origin_ != nullptr) req_origin_->inc();
      if (snap == nullptr)
        return respond(op, Status::kNoSnapshot, epoch, {});
      const auto route = snap->origin(get_addr(payload.data()));
      if (!route) return respond(op, Status::kNotFound, epoch, {});
      std::vector<std::uint8_t> out;
      out.reserve(21);
      put_addr(out, route->prefix.base());
      out.push_back(static_cast<std::uint8_t>(route->prefix.len()));
      put_u32(out, static_cast<std::uint32_t>(route->origin));
      return respond(op, Status::kOk, epoch, out);
    }
    case Op::kAlias: {
      if (payload.size() != 16) return error_frame("alias wants 16 bytes");
      if (req_alias_ != nullptr) req_alias_->inc();
      if (snap == nullptr)
        return respond(op, Status::kNoSnapshot, epoch, {});
      const auto p = snap->alias_prefix(get_addr(payload.data()));
      std::vector<std::uint8_t> out;
      out.push_back(p ? 1 : 0);
      if (p) {
        put_addr(out, p->base());
        out.push_back(static_cast<std::uint8_t>(p->len()));
      }
      return respond(op, Status::kOk, epoch, out);
    }
    case Op::kEpochInfo: {
      if (!payload.empty()) return error_frame("epoch_info wants no payload");
      if (req_epoch_ != nullptr) req_epoch_->inc();
      if (snap == nullptr)
        return respond(op, Status::kNoSnapshot, epoch, {});
      const EpochSnapshot::Info& info = snap->info();
      std::vector<std::uint8_t> out;
      out.reserve(4 + 6 * 8 + 8);
      put_u32(out, epoch);
      put_u64(out, info.input_total);
      put_u64(out, info.scan_targets);
      put_u64(out, info.aliased_prefixes);
      put_u64(out, info.responsive);
      put_u64(out, info.excluded_total);
      put_u64(out, snap->digest());
      return respond(op, Status::kOk, epoch, out);
    }
    case Op::kMetrics: {
      if (!payload.empty()) return error_frame("metrics wants no payload");
      if (req_metrics_ != nullptr) req_metrics_->inc();
      const std::string json =
          metrics_ == nullptr ? std::string{}
                              : metrics_->snapshot().to_json();
      const auto* p = reinterpret_cast<const std::uint8_t*>(json.data());
      return respond(op, Status::kOk, epoch,
                     std::span<const std::uint8_t>(p, json.size()));
    }
    case Op::kError:
      break;  // not a request op
  }
  return error_frame("unknown op");
}

}  // namespace sixdust::serve
