#include "serve/snapshot.hpp"

#include <algorithm>

#include "hitlist/service.hpp"
#include "netbase/prefix_trie.hpp"
#include "topo/world.hpp"

namespace sixdust::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

FrozenLpm<std::uint8_t> freeze_prefixes(const std::vector<Prefix>& prefixes) {
  PrefixTrie<std::uint8_t> trie;
  for (const auto& p : prefixes) trie.insert(p, 1);
  return FrozenLpm<std::uint8_t>(trie);
}

}  // namespace

EpochSnapshot::EpochSnapshot(
    Info info, std::vector<std::pair<Ipv6, ProtoMask>> responsive,
    const std::vector<Prefix>& aliased, const Rib* rib)
    : info_(std::move(info)),
      responsive_(std::move(responsive)),
      aliased_(freeze_prefixes(aliased)),
      rib_(rib) {
  digest_ = content_digest();
}

std::optional<ProtoMask> EpochSnapshot::lookup(const Ipv6& a) const {
  const auto it = std::lower_bound(
      responsive_.begin(), responsive_.end(), a,
      [](const std::pair<Ipv6, ProtoMask>& row, const Ipv6& key) {
        return row.first < key;
      });
  if (it == responsive_.end() || it->first != a) return std::nullopt;
  return it->second;
}

std::optional<Prefix> EpochSnapshot::alias_prefix(const Ipv6& a) const {
  const auto m = aliased_.longest_match(a);
  if (!m) return std::nullopt;
  return m->prefix;
}

std::uint64_t EpochSnapshot::content_digest() const {
  std::uint64_t h = kFnvOffset;
  fnv(h, static_cast<std::uint64_t>(info_.epoch));
  fnv(h, info_.input_total);
  fnv(h, info_.scan_targets);
  fnv(h, info_.aliased_prefixes);
  fnv(h, info_.responsive);
  fnv(h, info_.excluded_total);
  for (const auto& [a, mask] : responsive_) {
    fnv(h, a.hi());
    fnv(h, a.lo());
    fnv(h, mask);
  }
  for (const auto& p : aliased_.prefixes()) {
    fnv(h, p.base().hi());
    fnv(h, p.base().lo());
    fnv(h, static_cast<std::uint64_t>(p.len()));
  }
  return h;
}

std::shared_ptr<const EpochSnapshot> freeze_epoch(
    const HitlistService& service, const World& world, int epoch) {
  const History::Entry& entry = service.history().at(epoch);
  EpochSnapshot::Info info;
  info.epoch = epoch;
  info.date = ScanDate{epoch}.str();
  info.input_total = entry.input_total;
  info.scan_targets = entry.scan_targets;
  info.aliased_prefixes = entry.aliased_prefixes;
  info.responsive = entry.responsive.size();
  info.excluded_total = service.unresponsive_pool().size();
  return std::make_shared<const EpochSnapshot>(
      std::move(info), entry.responsive, service.aliased_list(),
      &world.rib());
}

}  // namespace sixdust::serve
