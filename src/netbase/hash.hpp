#pragma once

#include <cstdint>

#include "netbase/ipv6.hpp"

namespace sixdust {

/// SplitMix64 finalizer — the workhorse deterministic mixer used across the
/// simulation. Every "random" property of the simulated Internet is a pure
/// function of mixed identifiers, which keeps worlds reproducible.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

constexpr std::uint64_t hash_of(const Ipv6& a) {
  return hash_combine(mix64(a.hi()), a.lo());
}

constexpr std::uint64_t hash_of(const Ipv6& a, std::uint64_t salt) {
  return hash_combine(hash_of(a), salt);
}

/// Uniform draw in [0, 1) derived from a hash value.
constexpr double unit_from_hash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

struct Ipv6Hasher {
  std::size_t operator()(const Ipv6& a) const { return hash_of(a); }
};

}  // namespace sixdust
