#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv6.hpp"
#include "netbase/u128.hpp"

namespace sixdust {

/// An IPv6 prefix (network). The base address is kept canonical: all host
/// bits below `len` are zero (enforced on construction).
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a canonical prefix; host bits of `base` are masked off.
  static constexpr Prefix make(Ipv6 base, int len) {
    Prefix p;
    p.len_ = static_cast<std::uint8_t>(len);
    p.base_ = mask(base, len);
    return p;
  }

  /// Parse "2001:db8::/32". Returns std::nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr const Ipv6& base() const { return base_; }
  [[nodiscard]] constexpr int len() const { return len_; }

  [[nodiscard]] constexpr bool contains(const Ipv6& a) const {
    return mask(a, len_) == base_;
  }

  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.len_ >= len_ && contains(other.base_);
  }

  /// Number of addresses covered.
  [[nodiscard]] constexpr u128 size() const { return prefix_size(len_); }

  /// Last address of the prefix.
  [[nodiscard]] constexpr Ipv6 last() const {
    Ipv6 a = base_;
    for (int i = len_; i < 128; ++i) a.set_bit(i, true);
    return a;
  }

  /// The i-th direct sub-prefix with `extra` additional bits
  /// (i in [0, 2^extra)). Used by the multi-level alias detection which
  /// splits prefixes into 16 more-specifics (extra = 4).
  [[nodiscard]] constexpr Prefix subprefix(unsigned i, int extra) const {
    Ipv6 a = base_;
    for (int b = 0; b < extra; ++b)
      a.set_bit(len_ + b, (i >> (extra - 1 - b)) & 1);
    return make(a, len_ + extra);
  }

  /// A deterministic pseudo-random address inside the prefix, derived from
  /// `salt`. This mirrors the hitlist's alias detection which probes one
  /// random address per sub-prefix.
  [[nodiscard]] Ipv6 random_address(std::uint64_t salt) const;

  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  static constexpr Ipv6 mask(Ipv6 a, int len) {
    if (len >= 128) return a;
    if (len <= 0) return Ipv6{};
    std::uint64_t hi = a.hi();
    std::uint64_t lo = a.lo();
    if (len <= 64) {
      hi &= len == 64 ? ~std::uint64_t{0} : ~(~std::uint64_t{0} >> len);
      lo = 0;
    } else {
      lo &= ~(~std::uint64_t{0} >> (len - 64));
    }
    return Ipv6::from_words(hi, lo);
  }

 private:
  Ipv6 base_{};
  std::uint8_t len_ = 0;
};

/// Convenience helper for tests/tables; aborts on bad text.
Prefix pfx(std::string_view text);

struct PrefixHasher {
  std::size_t operator()(const Prefix& p) const {
    std::uint64_t h = p.base().hi() * 0x9e3779b97f4a7c15ULL;
    h ^= p.base().lo() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h ^ static_cast<std::uint64_t>(p.len());
  }
};

}  // namespace sixdust
