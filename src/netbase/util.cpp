#include "netbase/util.hpp"

#include <cstdio>

namespace sixdust {

std::string human_count(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1f B", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f M", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f k", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f %%", decimals, fraction * 100.0);
  return buf;
}

std::string ScanDate::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d", year(), month());
  return buf;
}

}  // namespace sixdust
