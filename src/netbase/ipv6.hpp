#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sixdust {

/// 128-bit IPv6 address value type.
///
/// Stored as two 64-bit words (network order: `hi()` holds the first eight
/// bytes). Comparison order equals numeric address order. Parsing accepts
/// RFC 4291 text forms (including "::" compression and embedded dotted-quad
/// tails); formatting produces the RFC 5952 canonical representation.
class Ipv6 {
 public:
  constexpr Ipv6() = default;

  static constexpr Ipv6 from_words(std::uint64_t hi, std::uint64_t lo) {
    Ipv6 a;
    a.hi_ = hi;
    a.lo_ = lo;
    return a;
  }

  /// Parse an IPv6 address from text. Returns std::nullopt on malformed
  /// input. Accepts full, compressed ("::"), and IPv4-mapped tails.
  static std::optional<Ipv6> parse(std::string_view text);

  /// RFC 5952 canonical text form (lowercase, longest zero run compressed).
  [[nodiscard]] std::string str() const;

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

  /// Byte `i` (0 = most significant).
  [[nodiscard]] constexpr std::uint8_t byte(int i) const {
    const std::uint64_t w = i < 8 ? hi_ : lo_;
    const int shift = 56 - 8 * (i & 7);
    return static_cast<std::uint8_t>(w >> shift);
  }

  constexpr void set_byte(int i, std::uint8_t v) {
    std::uint64_t& w = i < 8 ? hi_ : lo_;
    const int shift = 56 - 8 * (i & 7);
    w = (w & ~(std::uint64_t{0xff} << shift)) | (std::uint64_t{v} << shift);
  }

  /// Nibble `i` in [0, 32) (0 = most significant hex digit).
  [[nodiscard]] constexpr unsigned nibble(int i) const {
    const std::uint64_t w = i < 16 ? hi_ : lo_;
    const int shift = 60 - 4 * (i & 15);
    return static_cast<unsigned>((w >> shift) & 0xf);
  }

  constexpr void set_nibble(int i, unsigned v) {
    std::uint64_t& w = i < 16 ? hi_ : lo_;
    const int shift = 60 - 4 * (i & 15);
    w = (w & ~(std::uint64_t{0xf} << shift)) |
        (static_cast<std::uint64_t>(v & 0xf) << shift);
  }

  /// Bit `i` in [0, 128) (0 = most significant).
  [[nodiscard]] constexpr bool bit(int i) const {
    const std::uint64_t w = i < 64 ? hi_ : lo_;
    return (w >> (63 - (i & 63))) & 1;
  }

  constexpr void set_bit(int i, bool v) {
    std::uint64_t& w = i < 64 ? hi_ : lo_;
    const std::uint64_t mask = std::uint64_t{1} << (63 - (i & 63));
    w = v ? (w | mask) : (w & ~mask);
  }

  /// Address arithmetic on the full 128-bit value (wraps on overflow).
  [[nodiscard]] constexpr Ipv6 plus(std::uint64_t delta) const {
    Ipv6 r = *this;
    const std::uint64_t old = r.lo_;
    r.lo_ += delta;
    if (r.lo_ < old) ++r.hi_;
    return r;
  }

  /// Absolute distance to `other` when both share the same upper 64 bits;
  /// otherwise returns UINT64_MAX as a saturating sentinel.
  [[nodiscard]] constexpr std::uint64_t distance64(const Ipv6& other) const {
    if (hi_ != other.hi_) return ~std::uint64_t{0};
    return lo_ > other.lo_ ? lo_ - other.lo_ : other.lo_ - lo_;
  }

  friend constexpr auto operator<=>(const Ipv6&, const Ipv6&) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// Convenience literal-ish helper for tests and tables; aborts on bad text.
Ipv6 ip(std::string_view text);

}  // namespace sixdust
