#pragma once

#include <cstdint>
#include <optional>

#include "netbase/ipv6.hpp"

namespace sixdust {

/// An IPv4 address (used for Teredo/6to4 embedding and for the A records
/// that the Great Firewall injects).
struct Ipv4 {
  std::uint32_t value = 0;

  [[nodiscard]] std::string str() const;
  friend constexpr auto operator<=>(const Ipv4&, const Ipv4&) = default;
};

/// RFC 4380 Teredo: prefix 2001:0000::/32. The deprecated tunneling scheme
/// embeds a server IPv4 (bytes 4..7) and an obfuscated client IPv4
/// (bytes 12..15, bitwise NOT). The GFW's 2021+ injections carry Teredo
/// AAAA records — the key detection signal in the paper (Sec. 4.2).
[[nodiscard]] bool is_teredo(const Ipv6& a);

/// The client IPv4 embedded in a Teredo address (de-obfuscated).
[[nodiscard]] std::optional<Ipv4> teredo_client(const Ipv6& a);

/// Builds a Teredo address embedding `server` and `client`.
[[nodiscard]] Ipv6 make_teredo(Ipv4 server, Ipv4 client,
                               std::uint16_t flags = 0,
                               std::uint16_t port = 0);

/// RFC 3056 6to4: prefix 2002::/16 with the IPv4 in bytes 2..5.
[[nodiscard]] bool is_6to4(const Ipv6& a);
[[nodiscard]] std::optional<Ipv4> sixto4_v4(const Ipv6& a);

}  // namespace sixdust
