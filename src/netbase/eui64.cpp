#include "netbase/eui64.hpp"

#include <cstdio>

namespace sixdust {

std::string Mac::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

bool has_eui64_iid(const Ipv6& a) {
  return a.byte(11) == 0xff && a.byte(12) == 0xfe;
}

std::optional<Mac> eui64_mac(const Ipv6& a) {
  if (!has_eui64_iid(a)) return std::nullopt;
  Mac m;
  m.bytes[0] = static_cast<std::uint8_t>(a.byte(8) ^ 0x02);  // flip U/L bit
  m.bytes[1] = a.byte(9);
  m.bytes[2] = a.byte(10);
  m.bytes[3] = a.byte(13);
  m.bytes[4] = a.byte(14);
  m.bytes[5] = a.byte(15);
  return m;
}

Ipv6 apply_eui64(const Ipv6& net, const Mac& mac) {
  Ipv6 a = net;
  a.set_byte(8, static_cast<std::uint8_t>(mac.bytes[0] ^ 0x02));
  a.set_byte(9, mac.bytes[1]);
  a.set_byte(10, mac.bytes[2]);
  a.set_byte(11, 0xff);
  a.set_byte(12, 0xfe);
  a.set_byte(13, mac.bytes[3]);
  a.set_byte(14, mac.bytes[4]);
  a.set_byte(15, mac.bytes[5]);
  return a;
}

std::string oui_vendor(std::uint32_t oui) {
  switch (oui) {
    case kOuiZte:
      return "ZTE";
    case kOuiHuawei:
      return "Huawei";
    case kOuiAvm:
      return "AVM";
    case kOuiCisco:
      return "Cisco";
    case kOuiJuniper:
      return "Juniper";
    default:
      return "unknown";
  }
}

}  // namespace sixdust
