#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "netbase/ipv6.hpp"

namespace sixdust {

/// A 48-bit MAC address.
struct Mac {
  std::array<std::uint8_t, 6> bytes{};

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t v = 0;
    for (auto b : bytes) v = v << 8 | b;
    return v;
  }

  /// 24-bit Organizationally Unique Identifier.
  [[nodiscard]] std::uint32_t oui() const {
    return static_cast<std::uint32_t>(bytes[0]) << 16 |
           static_cast<std::uint32_t>(bytes[1]) << 8 | bytes[2];
  }

  [[nodiscard]] std::string str() const;

  friend auto operator<=>(const Mac&, const Mac&) = default;
};

/// True when the interface identifier (lower 64 bits) is EUI-64 derived
/// from a MAC address (ff:fe marker in the middle).
[[nodiscard]] bool has_eui64_iid(const Ipv6& a);

/// Extract the embedded MAC from an EUI-64 IID (U/L bit flipped back).
[[nodiscard]] std::optional<Mac> eui64_mac(const Ipv6& a);

/// Build an EUI-64 interface identifier from a MAC and place it in the
/// lower 64 bits of `net` (upper 64 bits preserved).
[[nodiscard]] Ipv6 apply_eui64(const Ipv6& net, const Mac& mac);

/// Vendor name for an OUI; the table covers the vendors named in the paper
/// plus a procedural tail. Returns "unknown" when unmapped.
[[nodiscard]] std::string oui_vendor(std::uint32_t oui);

/// OUI constants used by the simulated world.
inline constexpr std::uint32_t kOuiZte = 0x00259E;      // ZTE (paper Sec. 4.1)
inline constexpr std::uint32_t kOuiHuawei = 0x00E0FC;   // Huawei
inline constexpr std::uint32_t kOuiAvm = 0x3481C4;      // AVM (FRITZ!Box)
inline constexpr std::uint32_t kOuiCisco = 0x00000C;    // Cisco
inline constexpr std::uint32_t kOuiJuniper = 0x002283;  // Juniper

}  // namespace sixdust
