#include "netbase/rng.hpp"

#include "netbase/hash.hpp"

namespace sixdust {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace sixdust
