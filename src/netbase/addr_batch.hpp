#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"
#include "netbase/u128.hpp"

namespace sixdust {

class ThreadPool;
class MetricsRegistry;

/// Structure-of-arrays batch of IPv6 addresses — the bulk representation
/// behind the target-generation layer (DESIGN.md §12).
///
/// A `std::vector<Ipv6>` is an array of 16-byte records; at hitlist scale
/// (10^7..10^8 candidates) the per-address operations the generators live
/// on — nibble extraction, sort-unique dedup, membership filtering —
/// become the bottleneck when they run record-at-a-time. AddrBatch keeps
/// the two 64-bit halves in separate columns so that
///
///  * sort_unique() can run an LSD radix sort over the address bytes
///    (dropping positions the whole batch agrees on — address sets share
///    long prefixes, so typically only 4-7 of the 16 bytes vary — and
///    pairing the survivors into 16-bit digits, so a clustered batch
///    sorts in 2-4 scatter passes),
///  * the nibble transpose reads one column sequentially and writes
///    contiguous output the compiler auto-vectorizes (no intrinsics; see
///    expand_nibbles below), and
///  * membership filtering against sorted prefix tables or sorted known
///    sets is a single merge pass instead of per-address lookups.
///
/// Determinism: every operation is a pure function of the batch content.
/// sort_unique() may fan out over a ThreadPool, but the radix scatter
/// writes each element to a position computed from global digit counts —
/// the result is byte-identical for any thread count (including none),
/// the same contract as core/parallel.hpp's ordered helpers.
class AddrBatch {
 public:
  AddrBatch() = default;
  explicit AddrBatch(std::span<const Ipv6> addrs) { assign(addrs); }

  void assign(std::span<const Ipv6> addrs);
  void clear() {
    hi_.clear();
    lo_.clear();
    sorted_ = false;
    summary_ = Summary{};
  }
  void reserve(std::size_t n) {
    hi_.reserve(n);
    lo_.reserve(n);
  }
  void push_back(const Ipv6& a) {
    if (summary_.valid && !empty() &&
        pack(hi_.back(), lo_.back()) >= pack(a.hi(), a.lo()))
      summary_.ascending = false;
    summary_.note(a.hi(), a.lo());
    hi_.push_back(a.hi());
    lo_.push_back(a.lo());
    sorted_ = false;
  }

  [[nodiscard]] std::size_t size() const { return hi_.size(); }
  [[nodiscard]] bool empty() const { return hi_.empty(); }
  [[nodiscard]] Ipv6 operator[](std::size_t i) const {
    return Ipv6::from_words(hi_[i], lo_[i]);
  }
  [[nodiscard]] std::span<const std::uint64_t> hi() const { return hi_; }
  [[nodiscard]] std::span<const std::uint64_t> lo() const { return lo_; }

  [[nodiscard]] std::vector<Ipv6> to_vector() const;
  void copy_to(std::vector<Ipv6>& out) const;

  /// Sort ascending in numeric address order and drop duplicates. Large
  /// batches take the LSD radix path (optionally parallelized over
  /// `pool`); small ones fall back to a comparison sort. Both paths and
  /// every thread count produce the identical byte sequence. When `reg`
  /// is non-null, records tga.batch.* counters (radix passes run/skipped,
  /// duplicates removed) — all stable: they depend on the data only.
  void sort_unique(ThreadPool* pool = nullptr, MetricsRegistry* reg = nullptr);

  /// True after sort_unique() until the next mutation. The membership
  /// ops below require it.
  [[nodiscard]] bool sorted() const { return sorted_; }

  /// Remove every address covered by any of `sorted_prefixes` (when
  /// `keep_covered`, remove every address NOT covered). The prefixes must
  /// be in lexicographic (base, len) order — exactly what
  /// FrozenLpm::prefixes(), PrefixSet::to_vector() and PrefixTrie::visit
  /// produce — and pairwise nested or disjoint (always true of prefix
  /// sets). One merge pass over batch + table; requires sorted().
  void filter_covered(std::span<const Prefix> sorted_prefixes,
                      bool keep_covered = false,
                      MetricsRegistry* reg = nullptr);

  /// Remove every address present in `known` (itself sorted). One merge
  /// pass; requires sorted() on both sides.
  void subtract_sorted(const AddrBatch& known, MetricsRegistry* reg = nullptr);

  /// Append `count` consecutive addresses starting at `first` (wrapping
  /// 128-bit increment). The column fill is a vectorizable counted loop.
  /// A range appended to an empty batch that does not wrap the address
  /// space leaves the batch sorted() — ready for the merge ops above.
  void append_range(const Ipv6& first, std::uint64_t count);

  // --- nibble transpose ----------------------------------------------------

  /// Write the 32 hex nibbles of every address (most significant first)
  /// row-major into `out` (size() * 32 bytes).
  void transpose_nibbles(std::uint8_t* out) const;

  /// Per-position nibble histogram: counts[v] = how many addresses have
  /// value v at nibble position `pos` (0 = most significant).
  void nibble_histogram(int pos, std::span<std::uint32_t, 16> counts) const;

  /// The nibble field [begin, end) of every address as an integer (at
  /// most 16 nibbles wide), out[i] = value for address i. The per-element
  /// work is two shifts and an or — a vectorizable columnar scan.
  void nibble_field(int begin, int end, std::uint64_t* out) const;

  [[nodiscard]] static u128 pack(std::uint64_t hi, std::uint64_t lo) {
    return (u128{hi} << 64) | lo;
  }

 private:
  /// Running column summaries, maintained for free inside the assign and
  /// push_back loops: OR/AND of each column (their XOR marks the byte
  /// positions that can reorder the batch) and whether the content is
  /// already strictly ascending. sort_unique() consumes them to skip its
  /// detection sweep; mutations that cannot maintain them cheaply drop
  /// `valid` and the sweep runs instead. After element *removals* the
  /// OR/AND stay outer bounds of the true column ranges, which only ever
  /// overstates the varying bits — safe, at worst a wasted radix digit.
  struct Summary {
    std::uint64_t or_hi = 0, or_lo = 0;
    std::uint64_t and_hi = ~std::uint64_t{0}, and_lo = ~std::uint64_t{0};
    bool ascending = true;
    bool valid = true;
    void note(std::uint64_t hi, std::uint64_t lo) {
      or_hi |= hi;
      and_hi &= hi;
      or_lo |= lo;
      and_lo &= lo;
    }
  };

  std::vector<std::uint64_t> hi_;
  std::vector<std::uint64_t> lo_;
  bool sorted_ = false;
  Summary summary_;
};

/// Expand one address into its 32 nibbles (most significant first). The
/// byte-split inner loop is branch-free with constant shifts, so the
/// compiler unrolls and vectorizes it — this is the kernel behind
/// AddrBatch::transpose_nibbles and the batch helpers in tga/generator.hpp.
inline void expand_nibbles(std::uint64_t hi, std::uint64_t lo,
                           std::uint8_t* out) {
  const std::uint64_t words[2] = {__builtin_bswap64(hi),
                                  __builtin_bswap64(lo)};
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(words);
  for (int j = 0; j < 16; ++j) {
    out[2 * j] = static_cast<std::uint8_t>(bytes[j] >> 4);
    out[2 * j + 1] = static_cast<std::uint8_t>(bytes[j] & 0xf);
  }
}

/// Inverse of expand_nibbles: pack 32 nibbles into an address.
inline Ipv6 pack_nibbles(const std::uint8_t* nibbles) {
  std::uint64_t words[2];
  auto* bytes = reinterpret_cast<std::uint8_t*>(words);
  for (int j = 0; j < 16; ++j)
    bytes[j] = static_cast<std::uint8_t>((nibbles[2 * j] << 4) |
                                         (nibbles[2 * j + 1] & 0xf));
  return Ipv6::from_words(__builtin_bswap64(words[0]),
                          __builtin_bswap64(words[1]));
}

/// Sort + dedup a plain address vector through the batch engine — the
/// hitlist-scale replacement for the comparison-sort dedup_addresses path.
void radix_dedup(std::vector<Ipv6>& addrs, ThreadPool* pool = nullptr,
                 MetricsRegistry* reg = nullptr);

}  // namespace sixdust
