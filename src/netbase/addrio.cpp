#include "netbase/addrio.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <span>

namespace sixdust {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

template <typename T, typename ParseFn>
std::optional<std::vector<T>> read_list(std::istream& in, ParseFn parse,
                                        std::size_t* error_line) {
  std::vector<T> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view text = trim(line);
    const auto hash = text.find('#');
    if (hash != std::string_view::npos) text = trim(text.substr(0, hash));
    if (text.empty()) continue;
    auto value = parse(text);
    if (!value) {
      if (error_line != nullptr) *error_line = lineno;
      return std::nullopt;
    }
    out.push_back(*value);
  }
  return out;
}

}  // namespace

std::optional<std::vector<Ipv6>> read_address_list(std::istream& in,
                                                   std::size_t* error_line) {
  return read_list<Ipv6>(in, [](std::string_view t) { return Ipv6::parse(t); },
                         error_line);
}

std::optional<std::vector<Ipv6>> read_address_file(const std::string& path,
                                                   std::size_t* error_line) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_address_list(in, error_line);
}

std::optional<std::vector<Prefix>> read_prefix_list(std::istream& in,
                                                    std::size_t* error_line) {
  return read_list<Prefix>(
      in, [](std::string_view t) { return Prefix::parse(t); }, error_line);
}

std::optional<std::vector<Prefix>> read_prefix_file(const std::string& path,
                                                    std::size_t* error_line) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_prefix_list(in, error_line);
}

void write_address_list(std::ostream& out, std::span<const Ipv6> addrs,
                        std::string_view header) {
  if (!header.empty()) out << "# " << header << "\n";
  for (const auto& a : addrs) out << a.str() << "\n";
}

bool write_address_file(const std::string& path, std::span<const Ipv6> addrs,
                        std::string_view header) {
  std::ofstream out(path);
  if (!out) return false;
  write_address_list(out, addrs, header);
  return static_cast<bool>(out);
}

void write_prefix_list(std::ostream& out, std::span<const Prefix> prefixes,
                       std::string_view header) {
  if (!header.empty()) out << "# " << header << "\n";
  for (const auto& p : prefixes) out << p.str() << "\n";
}

bool write_prefix_file(const std::string& path,
                       std::span<const Prefix> prefixes,
                       std::string_view header) {
  std::ofstream out(path);
  if (!out) return false;
  write_prefix_list(out, prefixes, header);
  return static_cast<bool>(out);
}

}  // namespace sixdust
