#include "netbase/prefix_set.hpp"

namespace sixdust {

void PrefixSet::add(const Prefix& p) {
  trie_.insert(p, 1);
  frozen_.reset();
}

void PrefixSet::freeze() {
  if (!frozen_) frozen_.emplace(trie_);
}

bool PrefixSet::contains_exact(const Prefix& p) const {
  return trie_.exact(p) != nullptr;
}

bool PrefixSet::covers(const Ipv6& a) const {
  if (frozen_) return frozen_->covers(a);
  return trie_.covers(a);
}

std::optional<Prefix> PrefixSet::covering(const Ipv6& a) const {
  if (frozen_) {
    auto m = frozen_->longest_match(a);
    if (!m) return std::nullopt;
    return m->prefix;
  }
  auto m = trie_.longest_match(a);
  if (!m) return std::nullopt;
  return m->prefix;
}

std::vector<Prefix> PrefixSet::to_vector() const {
  std::vector<Prefix> out;
  out.reserve(trie_.size());
  trie_.visit([&](const Prefix& p, const char&) { out.push_back(p); });
  return out;
}

}  // namespace sixdust
