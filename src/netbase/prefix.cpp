#include "netbase/prefix.hpp"

#include <cstdio>
#include <cstdlib>

#include "netbase/hash.hpp"
#include "obs/log.hpp"

namespace sixdust {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv6::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  const auto len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 3) return std::nullopt;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 128) return std::nullopt;
  return make(*addr, len);
}

Ipv6 Prefix::random_address(std::uint64_t salt) const {
  const std::uint64_t h0 = hash_combine(hash_of(base_, salt), len_);
  const std::uint64_t h1 = mix64(h0);
  Ipv6 a = base_;
  for (int b = len_; b < 128; ++b) {
    const std::uint64_t h = b < 96 ? h0 : h1;
    a.set_bit(b, (h >> (b & 63)) & 1);
  }
  return a;
}

std::string Prefix::str() const {
  return base_.str() + "/" + std::to_string(len_);
}

Prefix pfx(std::string_view text) {
  auto p = Prefix::parse(text);
  if (!p) {
    Logger::global().error(
        "netbase", "bad prefix literal '" + std::string(text) + "'");
    std::abort();
  }
  return *p;
}

}  // namespace sixdust
