#include "netbase/addr_batch.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <limits>
#include <memory>

#include "core/parallel.hpp"
#include "core/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace sixdust {
namespace {

/// Below this size the comparison sort wins (radix pays a scratch copy
/// and per-pass prefix sums regardless of n).
constexpr std::size_t kRadixMin = 512;

/// Pair two byte positions into one 16-bit digit only when the batch is
/// large enough to amortize the 65536-bucket prefix sum per pass.
constexpr std::size_t kPairMin = std::size_t{1} << 15;

/// Above this size the fully random first scatter becomes TLB-bound and
/// an 8-bit first digit (256 write streams) beats a 16-bit one.
constexpr std::size_t kTlbMin = std::size_t{1} << 19;

/// One LSD pass: sort by byte position `p0`, or by the composite
/// (p1 << 8) | p0 when p1 >= 0. Positions count from the least
/// significant byte of the packed 128-bit address; pairing two *active*
/// positions is valid even when constant (skipped) bytes lie between
/// them — stability makes the composite pass equal to the two byte
/// passes run back to back.
struct RadixPass {
  int p0 = 0;
  int p1 = -1;
};

inline unsigned digit128(u128 v, const RadixPass& pass) {
  unsigned d = static_cast<unsigned>(
      static_cast<std::uint64_t>(v >> (8 * pass.p0)) & 0xff);
  if (pass.p1 >= 0)
    d |= static_cast<unsigned>(
             static_cast<std::uint64_t>(v >> (8 * pass.p1)) & 0xff)
         << 8;
  return d;
}

/// Same digit read from the two columns — the first pass consumes hi_/lo_
/// directly so the packed scratch rows never need a separate fill sweep.
inline unsigned digit_cols(const std::uint64_t* hi, const std::uint64_t* lo,
                           std::size_t i, const RadixPass& pass) {
  const std::uint64_t w0 = pass.p0 < 8 ? lo[i] : hi[i];
  unsigned d = static_cast<unsigned>(w0 >> (8 * (pass.p0 & 7))) & 0xffu;
  if (pass.p1 >= 0) {
    const std::uint64_t w1 = pass.p1 < 8 ? lo[i] : hi[i];
    d |= (static_cast<unsigned>(w1 >> (8 * (pass.p1 & 7))) & 0xffu) << 8;
  }
  return d;
}

}  // namespace

void AddrBatch::assign(std::span<const Ipv6> addrs) {
  hi_.resize(addrs.size());
  lo_.resize(addrs.size());
  // The summary accumulates inside the copy loop — a few register ops on
  // data already in flight, so sort_unique() never needs a separate
  // detection sweep over freshly assigned content.
  Summary s;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::uint64_t hi = addrs[i].hi();
    const std::uint64_t lo = addrs[i].lo();
    if (i > 0 && pack(hi_[i - 1], lo_[i - 1]) >= pack(hi, lo))
      s.ascending = false;
    s.note(hi, lo);
    hi_[i] = hi;
    lo_[i] = lo;
  }
  summary_ = s;
  sorted_ = false;
}

std::vector<Ipv6> AddrBatch::to_vector() const {
  std::vector<Ipv6> out;
  copy_to(out);
  return out;
}

void AddrBatch::copy_to(std::vector<Ipv6>& out) const {
  out.resize(size());
  for (std::size_t i = 0; i < size(); ++i)
    out[i] = Ipv6::from_words(hi_[i], lo_[i]);
}

void AddrBatch::sort_unique(ThreadPool* pool, MetricsRegistry* reg) {
  const std::size_t n = size();
  if (n < 2) {
    sorted_ = true;
    return;
  }

  if (n < kRadixMin) {
    // Already strictly ascending (common: re-dedup of a deduped set) —
    // a flag check or one compare sweep instead of a sort.
    bool ascending = summary_.valid ? summary_.ascending : true;
    if (!summary_.valid) {
      for (std::size_t i = 1; i < n; ++i) {
        if (pack(hi_[i - 1], lo_[i - 1]) >= pack(hi_[i], lo_[i])) {
          ascending = false;
          break;
        }
      }
    }
    if (ascending) {
      sorted_ = true;
      if (reg != nullptr) reg->counter("tga.batch.sorted_addrs",
                                       Stability::kStable).add(n);
      return;
    }
    // Comparison-sort fallback: zip, sort, unzip (assign refreshes the
    // summary). Produces the same ascending-unique sequence as the radix
    // path.
    std::vector<Ipv6> tmp = to_vector();
    std::sort(tmp.begin(), tmp.end());
    tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
    assign(tmp);
    sorted_ = true;
    return;
  }

  // The already-ascending test (common: re-dedup of a deduped set, or an
  // ordered concatenation) and the per-column OR/AND summaries. A byte
  // position can reorder the batch only where OR and AND disagree;
  // address sets share long prefixes, so most of the 16 positions die
  // here without any histogram work. Content that arrived via assign or
  // push_back carries the summary already; anything else pays one fused
  // sweep.
  const std::size_t chunks = parallel_chunks(pool, n);
  Summary m;
  if (summary_.valid) {
    m = summary_;
  } else {
    std::vector<Summary> sw(chunks);
    parallel_for(pool, n, chunks,
                 [&](std::size_t c, std::size_t b, std::size_t e) {
                   Summary s;
                   for (std::size_t i = b; i < e; ++i) {
                     s.note(hi_[i], lo_[i]);
                     if (i > b &&
                         pack(hi_[i - 1], lo_[i - 1]) >= pack(hi_[i], lo_[i]))
                       s.ascending = false;
                   }
                   sw[c] = s;
                 });
    for (const Summary& s : sw) {
      m.or_hi |= s.or_hi;
      m.and_hi &= s.and_hi;
      m.or_lo |= s.or_lo;
      m.and_lo &= s.and_lo;
      m.ascending = m.ascending && s.ascending;
    }
    for (std::size_t c = 1; m.ascending && c < chunks; ++c) {
      const std::size_t b = chunk_range(n, chunks, c).first;
      if (pack(hi_[b - 1], lo_[b - 1]) >= pack(hi_[b], lo_[b]))
        m.ascending = false;
    }
  }
  if (m.ascending) {
    sorted_ = true;
    summary_ = m;
    summary_.valid = true;
    if (reg != nullptr) reg->counter("tga.batch.sorted_addrs",
                                     Stability::kStable).add(n);
    return;
  }
  const std::uint64_t diff_hi = m.or_hi ^ m.and_hi;
  const std::uint64_t diff_lo = m.or_lo ^ m.and_lo;
  std::vector<int> active;
  for (int pos = 0; pos < 16; ++pos) {
    const std::uint64_t w = pos < 8 ? diff_lo : diff_hi;
    if ((w >> (8 * (pos & 7))) & 0xff) active.push_back(pos);
  }
  if (active.empty()) {
    // Every address is the same value (not ascending, no varying byte).
    hi_.resize(1);
    lo_.resize(1);
    sorted_ = true;
    summary_ = m;
    summary_.ascending = true;
    summary_.valid = true;
    if (reg != nullptr) {
      reg->counter("tga.batch.sorted_addrs", Stability::kStable).add(n);
      reg->counter("tga.batch.dup_removed", Stability::kStable).add(n - 1);
    }
    return;
  }

  // Both paths below: LSD passes where each pass takes per-chunk digit
  // counts of the *current* arrangement, a digit-major exclusive prefix
  // sum (digit d of chunk c lands after every smaller digit and after
  // digit d of chunks < c — the stable order), then an independent
  // scatter per chunk. Scatter targets are disjoint and
  // position-computed, so the result is identical no matter how chunks
  // are scheduled. 32-bit counts keep the histograms and prefix sums
  // cache-resident; they cannot overflow while the columns themselves fit
  // in memory. make_unique_for_overwrite skips the zero-fill of buffers
  // every slot of which gets written anyway.
  assert(n <= std::numeric_limits<std::uint32_t>::max());
  std::size_t passes_run = 0;
  std::size_t write = 0;

  // Varying-bit runs: contiguous spans of set bits in the diff masks, in
  // significance order (low word first). Constant bits *inside* a byte
  // compress away too — the compact key is the address's varying bits
  // packed tight, which preserves comparisons because every address in
  // the batch agrees on all the bits in between.
  struct BitRun {
    bool from_hi = false;
    int src_shift = 0;
    int dst_shift = 0;
    std::uint64_t mask = 0;
  };
  std::array<BitRun, 8> runs{};
  std::size_t n_runs = 0;
  int total_bits = 0;
  bool compactable = true;
  for (int word = 0; word < 2 && compactable; ++word) {
    std::uint64_t d = word == 0 ? diff_lo : diff_hi;
    int at = 0;
    while (d != 0) {
      const int skip = std::countr_zero(d);
      d >>= skip;
      at += skip;
      const int len = std::countr_one(d);
      if (n_runs == runs.size() || total_bits + len > 64) {
        compactable = false;
        break;
      }
      runs[n_runs++] = {word == 1, at, total_bits,
                       len == 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << len) - 1};
      total_bits += len;
      at += len;
      d = len == 64 ? 0 : d >> len;
    }
  }

  if (compactable) {
    // Compact-key path. The varying bits fit a u64, so each address maps
    // order-preservingly (and, on this batch, bijectively) to its packed
    // varying bits: sort-unique of the keys is sort-unique of the
    // addresses at half the scatter traffic of 16-byte rows. The first
    // pass builds keys straight from the columns during its scatter — the
    // key array is never pre-materialized — and the full addresses are
    // rebuilt afterwards from the sorted keys plus the shared constant
    // bits.
    const std::uint64_t* ch = hi_.data();
    const std::uint64_t* cl = lo_.data();
    const auto key_at = [&runs, ch, cl](std::size_t nr, std::size_t i) {
      std::uint64_t key = 0;
      for (std::size_t r = 0; r < nr; ++r) {
        const BitRun& run = runs[r];
        key |= (((run.from_hi ? ch[i] : cl[i]) >> run.src_shift) & run.mask)
               << run.dst_shift;
      }
      return key;
    };

    // Digit plan over the packed key, one shift+mask per digit. Large
    // batches take an 8-bit first pass when it does not add a pass: its
    // 256 write streams stay TLB-resident for the one scatter whose
    // destinations are fully random (later passes inherit locality from
    // the growing prefix order). The rest are 16-bit digits; small
    // batches stay all-8-bit so the 65536-bucket fills and prefix sums
    // cannot dominate.
    struct KeyPass {
      int shift = 0;
      std::uint64_t mask = 0;
      std::size_t buckets = 0;
    };
    std::vector<KeyPass> passes;
    {
      const auto div_up = [](int a, int b) { return (a + b - 1) / b; };
      int width0 = n >= kPairMin ? 16 : 8;
      if (n >= kTlbMin && total_bits > 8 &&
          1 + div_up(total_bits - 8, 16) == div_up(total_bits, 16))
        width0 = 8;
      int shift = 0;
      while (shift < total_bits) {
        const int w = std::min(shift == 0 ? width0
                               : n >= kPairMin ? 16
                                               : 8,
                               total_bits - shift);
        passes.push_back({shift, (std::uint64_t{1} << w) - 1,
                          std::size_t{1} << w});
        shift += w;
      }
    }
    std::size_t max_buckets = 0;
    for (const KeyPass& pass : passes)
      max_buckets = std::max(max_buckets, pass.buckets);

    auto keys = std::make_unique_for_overwrite<std::uint64_t[]>(n);
    auto scratch = std::make_unique_for_overwrite<std::uint64_t[]>(n);
    std::uint64_t* src = keys.get();
    std::uint64_t* dst = scratch.get();

    // Sequential runs fuse the next pass's histogram into the current
    // scatter (the value is already in a register when it is written), so
    // only pass 0 pays a separate counting sweep. Parallel runs keep the
    // per-chunk counting sweep per pass: the fused counts would be
    // partitioned by the *old* arrangement, not the new one.
    const bool fuse = chunks == 1;
    auto counts = std::make_unique_for_overwrite<std::uint32_t[]>(
        (fuse ? 2 : chunks) * max_buckets);
    std::uint32_t* cur = counts.get();
    std::uint32_t* nxt = fuse ? counts.get() + max_buckets : nullptr;

    // Only the runs feeding the first digit matter for its histogram —
    // commonly a single low-word run, so that sweep reads one column.
    std::size_t hist_runs = 0;
    while (hist_runs < n_runs &&
           runs[hist_runs].dst_shift <
               passes.front().shift + std::bit_width(passes.front().mask))
      ++hist_runs;

    for (std::size_t p = 0; p < passes.size(); ++p) {
      const KeyPass pass = passes[p];
      const bool from_cols = p == 0;
      if (from_cols) {
        parallel_for(pool, n, chunks,
                     [&](std::size_t c, std::size_t b, std::size_t e) {
                       std::uint32_t* h = cur + c * max_buckets;
                       std::fill_n(h, pass.buckets, std::uint32_t{0});
                       for (std::size_t i = b; i < e; ++i)
                         ++h[key_at(hist_runs, i) & pass.mask];
                     });
      } else if (!fuse) {
        parallel_for(pool, n, chunks,
                     [&](std::size_t c, std::size_t b, std::size_t e) {
                       std::uint32_t* h = cur + c * max_buckets;
                       std::fill_n(h, pass.buckets, std::uint32_t{0});
                       for (std::size_t i = b; i < e; ++i)
                         ++h[(src[i] >> pass.shift) & pass.mask];
                     });
      }
      std::uint32_t sum = 0;
      for (std::size_t d = 0; d < pass.buckets; ++d) {
        for (std::size_t c = 0; c < chunks; ++c) {
          const std::uint32_t v = cur[c * max_buckets + d];
          cur[c * max_buckets + d] = sum;
          sum += v;
        }
      }
      const bool count_next = fuse && p + 1 < passes.size();
      const KeyPass next = count_next ? passes[p + 1] : KeyPass{};
      if (count_next) std::fill_n(nxt, next.buckets, std::uint32_t{0});
      parallel_for(pool, n, chunks,
                   [&](std::size_t c, std::size_t b, std::size_t e) {
                     std::uint32_t* offset = cur + c * max_buckets;
                     for (std::size_t i = b; i < e; ++i) {
                       const std::uint64_t v =
                           from_cols ? key_at(n_runs, i) : src[i];
                       dst[offset[(v >> pass.shift) & pass.mask]++] = v;
                       if (count_next) ++nxt[(v >> next.shift) & next.mask];
                     }
                   });
      std::swap(src, dst);
      if (fuse) std::swap(cur, nxt);
    }
    passes_run = passes.size();

    // Rebuild the columns from the sorted unique keys: the shared
    // constant bits plus each key's runs back in their home positions.
    const std::uint64_t base_hi = m.and_hi & ~diff_hi;
    const std::uint64_t base_lo = m.and_lo & ~diff_lo;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && src[i] == src[i - 1]) continue;
      std::uint64_t hi = base_hi;
      std::uint64_t lo = base_lo;
      for (std::size_t r = 0; r < n_runs; ++r) {
        const BitRun& run = runs[r];
        const std::uint64_t bits = (src[i] >> run.dst_shift) & run.mask;
        if (run.from_hi)
          hi |= bits << run.src_shift;
        else
          lo |= bits << run.src_shift;
      }
      hi_[write] = hi;
      lo_[write] = lo;
      ++write;
    }
  } else {
    // Wide path (more than 8 varying bytes — near-random batches). Packed
    // 16-byte rows: each scatter write lands in one cache line where the
    // separate hi/lo columns would dirty two. The first pass reads the
    // columns directly and packs during its scatter, so no fill sweep
    // ever touches `rows`. Active positions pair into 16-bit digits on
    // large batches — half the scatter passes of byte-at-a-time.
    std::vector<RadixPass> passes;
    if (n >= kPairMin) {
      for (std::size_t j = 0; j + 1 < active.size(); j += 2)
        passes.push_back({active[j], active[j + 1]});
      if (active.size() % 2 != 0) passes.push_back({active.back(), -1});
    } else {
      for (const int pos : active) passes.push_back({pos, -1});
    }
    auto rows = std::make_unique_for_overwrite<u128[]>(n);
    auto scratch = std::make_unique_for_overwrite<u128[]>(n);
    u128* src = rows.get();
    u128* dst = scratch.get();
    std::size_t max_buckets = 256;
    for (const RadixPass& pass : passes)
      if (pass.p1 >= 0) max_buckets = 65536;
    auto counts =
        std::make_unique_for_overwrite<std::uint32_t[]>(chunks * max_buckets);
    for (std::size_t p = 0; p < passes.size(); ++p) {
      const RadixPass pass = passes[p];
      const std::size_t buckets = pass.p1 >= 0 ? 65536 : 256;
      const bool from_cols = p == 0;
      parallel_for(pool, n, chunks,
                   [&](std::size_t c, std::size_t b, std::size_t e) {
                     std::uint32_t* h = counts.get() + c * max_buckets;
                     std::fill_n(h, buckets, std::uint32_t{0});
                     if (from_cols) {
                       for (std::size_t i = b; i < e; ++i)
                         ++h[digit_cols(hi_.data(), lo_.data(), i, pass)];
                     } else {
                       for (std::size_t i = b; i < e; ++i)
                         ++h[digit128(src[i], pass)];
                     }
                   });
      std::uint32_t sum = 0;
      for (std::size_t d = 0; d < buckets; ++d) {
        for (std::size_t c = 0; c < chunks; ++c) {
          const std::uint32_t v = counts[c * max_buckets + d];
          counts[c * max_buckets + d] = sum;
          sum += v;
        }
      }
      parallel_for(pool, n, chunks,
                   [&](std::size_t c, std::size_t b, std::size_t e) {
                     std::uint32_t* offset = counts.get() + c * max_buckets;
                     if (from_cols) {
                       for (std::size_t i = b; i < e; ++i)
                         dst[offset[digit_cols(hi_.data(), lo_.data(), i,
                                               pass)]++] =
                             pack(hi_[i], lo_[i]);
                     } else {
                       for (std::size_t i = b; i < e; ++i)
                         dst[offset[digit128(src[i], pass)]++] = src[i];
                     }
                   });
      std::swap(src, dst);
    }
    passes_run = passes.size();
    // Unpack and unique in one sequential sweep.
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && src[i] == src[i - 1]) continue;
      hi_[write] = static_cast<std::uint64_t>(src[i] >> 64);
      lo_[write] = static_cast<std::uint64_t>(src[i]);
      ++write;
    }
  }
  hi_.resize(write);
  lo_.resize(write);
  sorted_ = true;
  summary_ = m;  // outer bounds still hold for the deduped subset
  summary_.ascending = true;
  summary_.valid = true;

  if (reg != nullptr) {
    reg->counter("tga.batch.sorted_addrs", Stability::kStable).add(n);
    reg->counter("tga.batch.radix_passes", Stability::kStable).add(passes_run);
    reg->counter("tga.batch.radix_passes_skipped", Stability::kStable)
        .add(static_cast<std::uint64_t>(16 - active.size()));
    reg->counter("tga.batch.dup_removed", Stability::kStable).add(n - write);
  }
}

void AddrBatch::filter_covered(std::span<const Prefix> sorted_prefixes,
                               bool keep_covered, MetricsRegistry* reg) {
  assert(sorted_);
  const std::size_t n = size();
  std::size_t j = 0;
  std::vector<u128> open_ends;  // ends of prefixes covering the cursor,
                                // outermost first (descending ends)
  std::size_t write = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 key = pack(hi_[i], lo_[i]);
    while (!open_ends.empty() && open_ends.back() < key) open_ends.pop_back();
    while (j < sorted_prefixes.size() &&
           pack(sorted_prefixes[j].base().hi(),
                sorted_prefixes[j].base().lo()) <= key) {
      const Ipv6 last = sorted_prefixes[j].last();
      const u128 end = pack(last.hi(), last.lo());
      // A prefix ending before the cursor can never cover a later
      // (larger) address; prefixes are nested-or-disjoint, so pushed ends
      // stay descending and the pop above retires the innermost first.
      if (end >= key) open_ends.push_back(end);
      ++j;
    }
    if (open_ends.empty() == keep_covered) continue;  // dropped
    hi_[write] = hi_[i];
    lo_[write] = lo_[i];
    ++write;
  }
  if (reg != nullptr) reg->counter("tga.batch.filtered_out",
                                   Stability::kStable).add(n - write);
  hi_.resize(write);
  lo_.resize(write);
}

void AddrBatch::subtract_sorted(const AddrBatch& known, MetricsRegistry* reg) {
  assert(sorted_ && known.sorted_);
  const std::size_t n = size();
  std::size_t j = 0;
  std::size_t write = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 key = pack(hi_[i], lo_[i]);
    while (j < known.size() && pack(known.hi_[j], known.lo_[j]) < key) ++j;
    if (j < known.size() && known.hi_[j] == hi_[i] && known.lo_[j] == lo_[i])
      continue;
    hi_[write] = hi_[i];
    lo_[write] = lo_[i];
    ++write;
  }
  if (reg != nullptr) reg->counter("tga.batch.filtered_out",
                                   Stability::kStable).add(n - write);
  hi_.resize(write);
  lo_.resize(write);
}

void AddrBatch::append_range(const Ipv6& first, std::uint64_t count) {
  const std::size_t base = size();
  hi_.resize(base + count);
  lo_.resize(base + count);
  std::uint64_t hi = first.hi();
  std::uint64_t lo = first.lo();
  std::size_t at = base;
  bool wrapped = false;
  while (count > 0) {
    // Fill the run that fits before the low word wraps as a simple
    // counted loop (vectorizable); step the high word across wraps.
    const std::uint64_t room = ~lo + 1;  // 0 means the full 2^64 space
    const std::uint64_t run =
        room == 0 ? count : std::min<std::uint64_t>(count, room);
    for (std::uint64_t k = 0; k < run; ++k) {
      hi_[at + k] = hi;
      lo_[at + k] = lo + k;
    }
    at += run;
    count -= run;
    lo += run;
    if (lo == 0) {
      ++hi;
      if (hi == 0 && count > 0) wrapped = true;  // past the 128-bit top
    }
  }
  // A range appended to an empty batch is ascending-unique unless it
  // wrapped the address space, so it can feed the merge ops directly.
  // The column summaries of a run are not worth maintaining — drop them.
  sorted_ = base == 0 && !wrapped;
  summary_.valid = false;
}

void AddrBatch::transpose_nibbles(std::uint8_t* out) const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i)
    expand_nibbles(hi_[i], lo_[i], out + 32 * i);
}

void AddrBatch::nibble_histogram(int pos,
                                 std::span<std::uint32_t, 16> counts) const {
  for (auto& c : counts) c = 0;
  const std::vector<std::uint64_t>& col = pos < 16 ? hi_ : lo_;
  const int shift = 60 - 4 * (pos & 15);
  for (const std::uint64_t w : col) ++counts[(w >> shift) & 0xf];
}

void AddrBatch::nibble_field(int begin, int end, std::uint64_t* out) const {
  assert(begin >= 0 && end <= 32 && end - begin <= 16 && begin <= end);
  const std::size_t n = size();
  if (begin == end) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int width = 4 * (end - begin);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  if (end <= 16) {
    // Entirely in the high word.
    const int shift = 64 - 4 * end;
    for (std::size_t i = 0; i < n; ++i) out[i] = (hi_[i] >> shift) & mask;
  } else if (begin >= 16) {
    // Entirely in the low word.
    const int shift = 64 - 4 * (end - 16);
    for (std::size_t i = 0; i < n; ++i) out[i] = (lo_[i] >> shift) & mask;
  } else {
    // Straddles the word boundary.
    const int lo_nibbles = end - 16;
    const int lo_shift = 64 - 4 * lo_nibbles;
    for (std::size_t i = 0; i < n; ++i)
      out[i] = ((hi_[i] << (4 * lo_nibbles)) | (lo_[i] >> lo_shift)) & mask;
  }
}

void radix_dedup(std::vector<Ipv6>& addrs, ThreadPool* pool,
                 MetricsRegistry* reg) {
  if (addrs.size() < 2) return;
  if (addrs.size() < kRadixMin) {
    std::sort(addrs.begin(), addrs.end());
    addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
    return;
  }
  AddrBatch batch(addrs);
  batch.sort_unique(pool, reg);
  batch.copy_to(addrs);
}

}  // namespace sixdust
