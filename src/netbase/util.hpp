#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sixdust {

/// "1.7 M", "910.8 k", "593" — the unit style used by the paper's tables.
[[nodiscard]] std::string human_count(double v);

/// "46.44 %" style percentage.
[[nodiscard]] std::string percent(double fraction, int decimals = 1);

/// Simulation calendar. The hitlist timeline runs monthly scans from
/// 2018-07 (scan 0) to 2022-04 (scan 45), mirroring the paper's July 2018 -
/// April 2022 window at reduced cadence.
struct ScanDate {
  int index = 0;  // scan number, 0-based, one per month

  [[nodiscard]] int year() const { return 2018 + (index + 6) / 12; }
  [[nodiscard]] int month() const { return 1 + (index + 6) % 12; }
  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const ScanDate&, const ScanDate&) = default;
};

inline constexpr int kTimelineScans = 46;  // 2018-07 .. 2022-04 inclusive

/// Scan indices for the paper's yearly snapshot rows (Table 1):
/// 2018-07-01, 2019-04-01, 2020-04-01, 2021-04-02, 2022-04-07.
inline constexpr int kSnapshotScans[5] = {0, 9, 21, 33, 45};

}  // namespace sixdust
