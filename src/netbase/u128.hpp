#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

namespace sixdust {

/// Unsigned 128-bit helper for address-space accounting (an AS can announce
/// up to 2^128 addresses; Fig. 6 of the paper bins aliased space as powers
/// of two up to 2^112). Thin wrapper over the compiler's __int128.
using u128 = unsigned __int128;

constexpr u128 u128_pow2(int n) { return u128{1} << n; }

/// Number of addresses in a prefix of length `len` (len in [0, 128]).
constexpr u128 prefix_size(int len) {
  return len == 0 ? ~u128{0} : u128_pow2(128 - len);
}

inline double u128_to_double(u128 v) {
  return static_cast<double>(static_cast<std::uint64_t>(v >> 64)) *
             18446744073709551616.0 +
         static_cast<double>(static_cast<std::uint64_t>(v));
}

/// floor(log2(v)); returns -1 for v == 0.
constexpr int u128_log2(u128 v) {
  const auto hi = static_cast<std::uint64_t>(v >> 64);
  if (hi != 0) return 127 - std::countl_zero(hi);
  const auto lo = static_cast<std::uint64_t>(v);
  return lo == 0 ? -1 : 63 - std::countl_zero(lo);
}

inline std::string u128_str(u128 v) {
  if (v == 0) return "0";
  std::string s;
  while (v) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  return s;
}

}  // namespace sixdust
