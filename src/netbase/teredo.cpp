#include "netbase/teredo.hpp"

#include <cstdio>

namespace sixdust {

std::string Ipv4::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value >> 24,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

bool is_teredo(const Ipv6& a) { return (a.hi() >> 32) == 0x20010000; }

std::optional<Ipv4> teredo_client(const Ipv6& a) {
  if (!is_teredo(a)) return std::nullopt;
  return Ipv4{static_cast<std::uint32_t>(a.lo() & 0xffffffff) ^ 0xffffffffu};
}

Ipv6 make_teredo(Ipv4 server, Ipv4 client, std::uint16_t flags,
                 std::uint16_t port) {
  const std::uint64_t hi =
      0x2001000000000000ULL | server.value;
  const std::uint64_t lo = (static_cast<std::uint64_t>(flags) << 48) |
                           (static_cast<std::uint64_t>(port ^ 0xffff) << 32) |
                           (client.value ^ 0xffffffffu);
  return Ipv6::from_words(hi, lo);
}

bool is_6to4(const Ipv6& a) { return (a.hi() >> 48) == 0x2002; }

std::optional<Ipv4> sixto4_v4(const Ipv6& a) {
  if (!is_6to4(a)) return std::nullopt;
  return Ipv4{static_cast<std::uint32_t>((a.hi() >> 16) & 0xffffffff)};
}

}  // namespace sixdust
