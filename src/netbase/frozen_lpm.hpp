#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/prefix_trie.hpp"

namespace sixdust {

/// Immutable longest-prefix-match snapshot, flattened from a PrefixTrie.
///
/// The prefix set is compiled once into a sorted interval table: every
/// address maps to the most specific covering prefix, so the 128-level (or
/// 32-level, for the compressed trie) descent collapses into a single
/// binary search over a contiguous array of 128-bit boundaries. The
/// boundaries are stored in Eytzinger (BFS heap) order, which turns the
/// search into a tight, prefetch-friendly loop over one flat array. This
/// is the structure behind the read-mostly consumers that never mutate
/// while a scan is probing: the RIB after world build, the service
/// blocklist, the deployment map, and the per-scan aliased set.
///
/// Construction consumes the trie's lexicographic visit order, so two
/// tries holding the same (prefix, value) pairs freeze into byte-identical
/// tables regardless of insertion order — lookups stay deterministic.
///
/// Thread-safety: a FrozenLpm is deeply immutable after construction; any
/// number of threads may call the const interface concurrently without
/// synchronization. There is deliberately no way to add or remove entries
/// — rebuild from a trie to change the set (see DESIGN.md, "The LPM
/// layer").
template <typename T>
class FrozenLpm {
 public:
  FrozenLpm() = default;

  explicit FrozenLpm(const PrefixTrie<T>& trie) {
    prefixes_.reserve(trie.size());
    values_.reserve(trie.size());
    trie.visit([&](const Prefix& p, const T& v) {
      prefixes_.push_back(p);
      values_.push_back(v);
    });
    compile();
  }

  struct Match {
    Prefix prefix;
    const T* value = nullptr;
  };

  /// Longest-prefix match for `a`, if any stored prefix covers it.
  [[nodiscard]] std::optional<Match> longest_match(const Ipv6& a) const {
    const std::int32_t s = slot_of(a);
    if (s < 0) return std::nullopt;
    return Match{prefixes_[static_cast<std::size_t>(s)],
                 &values_[static_cast<std::size_t>(s)]};
  }

  /// Value of the longest stored prefix covering `a`, or nullptr — the
  /// fast path for consumers that do not need the matched prefix itself.
  [[nodiscard]] const T* lookup(const Ipv6& a) const {
    const std::int32_t s = slot_of(a);
    return s < 0 ? nullptr : &values_[static_cast<std::size_t>(s)];
  }

  /// True if any stored prefix covers `a`.
  [[nodiscard]] bool covers(const Ipv6& a) const { return slot_of(a) >= 0; }

  [[nodiscard]] std::size_t size() const { return prefixes_.size(); }
  [[nodiscard]] bool empty() const { return prefixes_.empty(); }

  /// The stored prefixes in lexicographic (base, len) order.
  [[nodiscard]] const std::vector<Prefix>& prefixes() const {
    return prefixes_;
  }

 private:
  static constexpr Ipv6 kMaxAddr =
      Ipv6::from_words(~std::uint64_t{0}, ~std::uint64_t{0});

  /// Index of the interval covering `a`: the predecessor of the first
  /// boundary > `a`. Branch-reduced Eytzinger descent — node k's children
  /// are 2k and 2k+1, so the search is one multiply-add per level over a
  /// single contiguous array, with the grandchildren's cache line
  /// prefetched ahead.
  [[nodiscard]] std::int32_t slot_of(const Ipv6& a) const {
    const std::size_t n = ekey_.size() - 1;  // slot 0 unused (heap layout)
    if (n == 0) return -1;
    const u128 key = pack(a);
    std::size_t k = 1;
    while (k <= n) {
      // Prefetch four levels ahead (a 64-byte line holds 4 boundaries),
      // clamped in-bounds: stray prefetches still pay for TLB walks.
      __builtin_prefetch(ekey_.data() + std::min(k * 16, n));
      k = 2 * k + (ekey_[k] <= key ? 1 : 0);
    }
    // Cancel the trailing right turns plus the final left turn: k is now
    // the heap position of the first boundary > `a`, or 0 when every
    // boundary is <= `a` (then the last interval applies).
    k >>= static_cast<unsigned>(std::countr_one(k)) + 1;
    return k == 0 ? last_slot_ : eslot_[k];
  }

  /// Sweep the (base, len)-sorted prefixes into disjoint half-open
  /// intervals annotated with the most specific covering prefix. Prefixes
  /// are pairwise nested or disjoint, so a stack of currently-open
  /// (containing) prefixes suffices.
  void compile() {
    starts_.reserve(2 * prefixes_.size() + 1);
    slot_.reserve(2 * prefixes_.size() + 1);
    boundary(Ipv6{}, -1);
    std::vector<std::int32_t> open;
    for (std::size_t i = 0; i < prefixes_.size(); ++i) {
      const Prefix& p = prefixes_[i];
      close_until(open, p);
      boundary(p.base(), static_cast<std::int32_t>(i));
      open.push_back(static_cast<std::int32_t>(i));
    }
    close_until(open, std::nullopt);

    // Re-lay the boundary table in Eytzinger order. Each heap node stores
    // its boundary address and the slot of the interval *ending* there
    // (its sorted predecessor), which is exactly what the predecessor
    // search needs; the head boundary :: can never be an upper bound.
    const std::size_t n = starts_.size();
    ekey_.assign(n + 1, u128{0});
    eslot_.assign(n + 1, -1);
    last_slot_ = slot_.back();
    eytzingerize(0, 1);
    starts_.clear();
    starts_.shrink_to_fit();
    slot_.clear();
    slot_.shrink_to_fit();
  }

  std::size_t eytzingerize(std::size_t i, std::size_t k) {
    if (k < ekey_.size()) {
      i = eytzingerize(i, 2 * k);
      ekey_[k] = pack(starts_[i]);
      eslot_[k] = i == 0 ? -1 : slot_[i - 1];
      i = eytzingerize(i + 1, 2 * k + 1);
    }
    return i;
  }

  static u128 pack(const Ipv6& a) {
    return (u128{a.hi()} << 64) | a.lo();
  }

  /// Pop open prefixes that end before `next` starts (all of them when
  /// `next` is empty), emitting the boundary where each one's coverage
  /// hands back to its parent.
  void close_until(std::vector<std::int32_t>& open,
                   std::optional<Prefix> next) {
    while (!open.empty()) {
      const Prefix& top = prefixes_[static_cast<std::size_t>(open.back())];
      if (next && top.contains(*next)) return;
      open.pop_back();
      const Ipv6 end = top.last();
      if (end == kMaxAddr) continue;  // nothing above; outer ends there too
      boundary(end.plus(1), open.empty() ? -1 : open.back());
    }
  }

  void boundary(const Ipv6& start, std::int32_t slot) {
    if (!starts_.empty() && starts_.back() == start) {
      slot_.back() = slot;  // a more specific prefix starts at the same base
      return;
    }
    starts_.push_back(start);
    slot_.push_back(slot);
  }

  /// Interval i covers [starts_[i], starts_[i+1]) and resolves to
  /// prefixes_[slot_[i]] (no match when the slot is -1). Both vectors are
  /// scratch during compile(); lookups run on the Eytzinger arrays below.
  std::vector<Ipv6> starts_;
  std::vector<std::int32_t> slot_;
  /// Heap-ordered boundary addresses (1-based; ekey_[0] unused, packed as
  /// raw 128-bit integers for flat compares) and the slot of the interval
  /// ending at each boundary.
  std::vector<u128> ekey_;
  std::vector<std::int32_t> eslot_;
  std::int32_t last_slot_ = -1;
  std::vector<Prefix> prefixes_;
  std::vector<T> values_;
};

}  // namespace sixdust
