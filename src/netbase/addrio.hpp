#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netbase/prefix.hpp"

namespace sixdust {

/// Text formats for address and prefix lists — the interchange format of
/// the hitlist ecosystem (one entry per line, '#' comments, blank lines
/// ignored). This is how the real service publishes responsive sets,
/// aliased-prefix lists and blocklists.

/// Parse a list of addresses. On malformed lines, parsing stops and
/// nullopt is returned; `error_line` (1-based) reports the offender.
[[nodiscard]] std::optional<std::vector<Ipv6>> read_address_list(
    std::istream& in, std::size_t* error_line = nullptr);
[[nodiscard]] std::optional<std::vector<Ipv6>> read_address_file(
    const std::string& path, std::size_t* error_line = nullptr);

[[nodiscard]] std::optional<std::vector<Prefix>> read_prefix_list(
    std::istream& in, std::size_t* error_line = nullptr);
[[nodiscard]] std::optional<std::vector<Prefix>> read_prefix_file(
    const std::string& path, std::size_t* error_line = nullptr);

void write_address_list(std::ostream& out, std::span<const Ipv6> addrs,
                        std::string_view header = {});
[[nodiscard]] bool write_address_file(const std::string& path,
                                      std::span<const Ipv6> addrs,
                                      std::string_view header = {});

void write_prefix_list(std::ostream& out, std::span<const Prefix> prefixes,
                       std::string_view header = {});
[[nodiscard]] bool write_prefix_file(const std::string& path,
                                     std::span<const Prefix> prefixes,
                                     std::string_view header = {});

}  // namespace sixdust
