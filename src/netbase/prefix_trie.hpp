#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/prefix.hpp"

namespace sixdust {

/// Binary (radix-1) trie keyed by IPv6 prefixes, supporting exact insert /
/// lookup and longest-prefix match. This is the core routing-table and
/// alias-lookup structure; simple by design (one bit per level) — lookups
/// are bounded by 128 steps and the simulation's tries are small.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Insert or overwrite the value at `p`. Returns a reference to the
  /// stored value.
  T& insert(const Prefix& p, T value) {
    std::size_t n = descend_create(p);
    nodes_[n].value = std::move(value);
    if (!nodes_[n].occupied) {
      nodes_[n].occupied = true;
      ++size_;
    }
    return *nodes_[n].value;
  }

  /// Value stored exactly at `p`, if any.
  [[nodiscard]] const T* exact(const Prefix& p) const {
    std::size_t n = 0;
    for (int b = 0; b < p.len(); ++b) {
      const std::size_t c = nodes_[n].child[p.base().bit(b)];
      if (c == 0) return nullptr;
      n = c;
    }
    return nodes_[n].occupied ? &*nodes_[n].value : nullptr;
  }

  [[nodiscard]] T* exact(const Prefix& p) {
    return const_cast<T*>(static_cast<const PrefixTrie*>(this)->exact(p));
  }

  struct Match {
    Prefix prefix;
    const T* value = nullptr;
  };

  /// Longest-prefix match for `a`, if any prefix on the path is occupied.
  [[nodiscard]] std::optional<Match> longest_match(const Ipv6& a) const {
    std::optional<Match> best;
    std::size_t n = 0;
    for (int b = 0; b <= 128; ++b) {
      if (nodes_[n].occupied)
        best = Match{Prefix::make(a, b), &*nodes_[n].value};
      if (b == 128) break;
      const std::size_t c = nodes_[n].child[a.bit(b)];
      if (c == 0) break;
      n = c;
    }
    return best;
  }

  /// True if any stored prefix covers `a`.
  [[nodiscard]] bool covers(const Ipv6& a) const {
    return longest_match(a).has_value();
  }

  /// Visit all (prefix, value) pairs in lexicographic order.
  void visit(const std::function<void(const Prefix&, const T&)>& fn) const {
    Ipv6 a{};
    visit_rec(0, a, 0, fn);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::size_t child[2] = {0, 0};
    std::optional<T> value;
    bool occupied = false;
  };

  std::size_t descend_create(const Prefix& p) {
    std::size_t n = 0;
    for (int b = 0; b < p.len(); ++b) {
      const bool bit = p.base().bit(b);
      if (nodes_[n].child[bit] == 0) {
        nodes_.push_back(Node{});
        nodes_[n].child[bit] = nodes_.size() - 1;
      }
      n = nodes_[n].child[bit];
    }
    return n;
  }

  void visit_rec(std::size_t n, Ipv6& a, int depth,
                 const std::function<void(const Prefix&, const T&)>& fn) const {
    if (nodes_[n].occupied) fn(Prefix::make(a, depth), *nodes_[n].value);
    if (depth == 128) return;
    for (int bit = 0; bit < 2; ++bit) {
      const std::size_t c = nodes_[n].child[bit];
      if (c == 0) continue;
      a.set_bit(depth, bit != 0);
      visit_rec(c, a, depth + 1, fn);
      a.set_bit(depth, false);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace sixdust
