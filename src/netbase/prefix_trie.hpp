#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/prefix.hpp"

namespace sixdust {

/// Path-compressed 4-bit-stride radix trie keyed by IPv6 prefixes,
/// supporting exact insert / lookup and longest-prefix match. This is the
/// core routing-table and alias-lookup structure, and it sits on every
/// simulated probe path (RIB origin lookups, blocklist checks, aliased
/// filtering), so the layout is tuned for lookups:
///
///  * nodes live at nibble-aligned depths (0, 4, ..., 128) in one
///    contiguous vector — a lookup touches at most 32 nodes instead of the
///    128 of a bit-at-a-time trie, and path compression skips runs of
///    single-child levels entirely (each node stores its full masked key,
///    so a skip verifies with one 128-bit compare);
///  * prefixes whose length is not a multiple of four land in a block of
///    tree-bitmap-style value slots hanging off their nibble-aligned node
///    (slot (e, v) holds the prefix extending the node by `e` bits with
///    value `v`), so all lengths 0..128 are represented exactly — no
///    prefix expansion, and `visit` can reproduce the lexicographic
///    (base, len) order byte-for-byte;
///  * values live in their own contiguous vector; nodes carry 4-byte
///    indices instead of a `std::optional<T>` apiece, and the slot blocks
///    sit in an on-demand side table so a node is 96 bytes.
///
/// For read-mostly consumers that never mutate during a scan, FrozenLpm
/// (frozen_lpm.hpp) flattens a finished trie into a sorted interval table
/// with O(log n) branch-free-ish lookups; this class remains the mutable
/// builder and the general-purpose structure.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Insert or overwrite the value at `p`. Returns a reference to the
  /// stored value (invalidated by subsequent inserts, as before).
  T& insert(const Prefix& p, T value) {
    const int depth = p.len() & ~3;
    const Ipv6& base = p.base();
    std::uint32_t cur = 0;
    std::uint32_t parent = 0;
    unsigned parent_edge = 0;
    for (;;) {
      const int nd = nodes_[cur].depth;
      const int cpl = common_depth(base, nodes_[cur].key, std::min(nd, depth));
      if (cpl == nd) {
        if (nd == depth) break;  // home node found
        const unsigned c = base.nibble(nd >> 2);
        const std::uint32_t next = nodes_[cur].child[c];
        if (next == 0) {
          const std::uint32_t leaf = new_node(Prefix::mask(base, depth), depth);
          nodes_[cur].child[c] = leaf;
          cur = leaf;
          break;
        }
        parent = cur;
        parent_edge = c;
        cur = next;
        continue;
      }
      // Divergence inside this node's compressed path: splice an
      // intermediate node at the common depth into the parent edge (`cur`
      // is never the root here — the root's depth is 0 and always matches).
      const std::uint32_t mid = new_node(Prefix::mask(base, cpl), cpl);
      nodes_[parent].child[parent_edge] = mid;
      nodes_[mid].child[nodes_[cur].key.nibble(cpl >> 2)] = cur;
      if (cpl == depth) {
        cur = mid;
      } else {
        const std::uint32_t leaf = new_node(Prefix::mask(base, depth), depth);
        nodes_[mid].child[base.nibble(cpl >> 2)] = leaf;
        cur = leaf;
      }
      break;
    }
    return place_value(cur, p, std::move(value));
  }

  /// Value stored exactly at `p`, if any.
  [[nodiscard]] const T* exact(const Prefix& p) const {
    const int depth = p.len() & ~3;
    std::uint32_t cur = 0;
    while (nodes_[cur].depth < depth) {
      const std::uint32_t next =
          nodes_[cur].child[p.base().nibble(nodes_[cur].depth >> 2)];
      if (next == 0) return nullptr;
      cur = next;
    }
    const Node& n = nodes_[cur];
    // Intermediate keys are prefixes of this key, so one check suffices.
    if (n.depth != depth || Prefix::mask(p.base(), depth) != n.key)
      return nullptr;
    const unsigned i = slot_index(p, depth);
    const std::uint32_t s =
        i == 0 ? n.val0
               : (n.ext == kNoValue ? kNoValue : ext_slots_[n.ext].slot[i]);
    return s == kNoValue ? nullptr : &values_[s];
  }

  [[nodiscard]] T* exact(const Prefix& p) {
    return const_cast<T*>(static_cast<const PrefixTrie*>(this)->exact(p));
  }

  struct Match {
    Prefix prefix;
    const T* value = nullptr;
  };

  /// Longest-prefix match for `a`, if any stored prefix covers it.
  [[nodiscard]] std::optional<Match> longest_match(const Ipv6& a) const {
    const auto [best, best_len] = match_core(a);
    if (best == nullptr) return std::nullopt;
    return Match{Prefix::make(a, best_len), best};
  }

  /// Value of the longest stored prefix covering `a`, or nullptr — the
  /// fast path for consumers that do not need the matched prefix itself
  /// (origin lookups, deployment resolution, coverage checks).
  [[nodiscard]] const T* lookup(const Ipv6& a) const {
    return match_core(a).first;
  }

  /// True if any stored prefix covers `a`.
  [[nodiscard]] bool covers(const Ipv6& a) const {
    return match_core(a).first != nullptr;
  }

  /// Visit all (prefix, value) pairs in lexicographic (base, len) order.
  /// `fn` is any callable taking (const Prefix&, const T&).
  template <typename F>
  void visit(F&& fn) const {
    visit_node(0, fn);
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

 private:
  static constexpr std::uint32_t kNoValue = 0xffffffffu;

  /// Shared descent: (value of the most specific covering prefix, its
  /// length), or (nullptr, -1).
  [[nodiscard]] std::pair<const T*, int> match_core(const Ipv6& a) const {
    int best_len = -1;
    const T* best = nullptr;
    std::uint32_t cur = 0;
    int prev_depth = -4;
    for (;;) {
      const Node& n = nodes_[cur];
      // Only a compressed edge (one skipping levels) needs verification:
      // an uncompressed child's key is the parent key plus the nibble we
      // just branched on.
      if (n.depth != prev_depth + 4 && n.depth > 0 &&
          !key_matches(a, n.key, n.depth))
        break;
      prev_depth = n.depth;
      if (n.slot_mask & 1u) {
        best_len = n.depth;
        best = &values_[n.val0];
      }
      if (n.depth == 128) break;
      const unsigned x = a.nibble(n.depth >> 2);
      if (n.slot_mask >> 1) {
        const ExtSlots& es = ext_slots_[n.ext];
        for (unsigned e = 1; e <= 3; ++e) {
          const unsigned i = (1u << e) - 1 + (x >> (4 - e));
          if (n.slot_mask & (1u << i)) {
            best_len = n.depth + static_cast<int>(e);
            best = &values_[es.slot[i]];
          }
        }
      }
      const std::uint32_t next = n.child[x];
      if (next == 0) break;
      cur = next;
    }
    return {best, best_len};
  }

  /// Value slots for prefixes extending a node by 1..3 bits: slot
  /// (1<<e)-1+v holds the extension of `e` bits with value `v` (index 0 is
  /// unused — that slot lives inline in the node). Lengths that are not a
  /// multiple of four are rare, so these 60-byte blocks live in a side
  /// table and nodes stay at 96 bytes (1.5 cache lines instead of 2.25).
  struct ExtSlots {
    std::array<std::uint32_t, 15> slot;
    ExtSlots() { slot.fill(kNoValue); }
  };

  struct Node {
    Ipv6 key{};  // base address masked at `depth`
    /// Occupancy bitmask (bit 0 = val0, bits 1..14 = ext slots) — lets
    /// lookups skip the value machinery entirely on pure interior nodes,
    /// which dominate the path.
    std::uint16_t slot_mask = 0;
    std::uint8_t depth = 0;  // bit depth, always a multiple of 4
    /// Value stored exactly at this node's (key, depth), or kNoValue.
    std::uint32_t val0 = kNoValue;
    /// Index into ext_slots_ when any 1..3-bit extension is stored here.
    std::uint32_t ext = kNoValue;
    /// Child node index per next nibble; 0 = none (the root is never a
    /// child, so index 0 doubles as the null sentinel).
    std::array<std::uint32_t, 16> child{};
  };

  /// Do `a` and `key` agree on the first `depth` bits? `depth` is a
  /// positive multiple of 4 and `key` is masked, so this is two shifted
  /// xors instead of a full mask construction.
  static bool key_matches(const Ipv6& a, const Ipv6& key, int depth) {
    if (depth <= 64) return ((a.hi() ^ key.hi()) >> (64 - depth)) == 0;
    if (a.hi() != key.hi()) return false;
    if (depth == 128) return a.lo() == key.lo();
    return ((a.lo() ^ key.lo()) >> (128 - depth)) == 0;
  }

  /// Length of the common prefix of `a` and `b`, floored to a nibble
  /// boundary and capped at `cap` (itself a multiple of 4).
  static int common_depth(const Ipv6& a, const Ipv6& b, int cap) {
    const std::uint64_t xh = a.hi() ^ b.hi();
    const int bits = xh != 0
                         ? std::countl_zero(xh)
                         : 64 + std::countl_zero(a.lo() ^ b.lo());
    return std::min(bits & ~3, cap);
  }

  static unsigned slot_index(const Prefix& p, int node_depth) {
    const unsigned e = static_cast<unsigned>(p.len()) & 3u;
    if (e == 0) return 0;
    const unsigned v = p.base().nibble(node_depth >> 2) >> (4 - e);
    return (1u << e) - 1 + v;
  }

  std::uint32_t new_node(const Ipv6& key, int depth) {
    Node n;
    n.key = key;
    n.depth = static_cast<std::uint8_t>(depth);
    nodes_.push_back(std::move(n));
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  T& place_value(std::uint32_t node, const Prefix& p, T value) {
    const unsigned i = slot_index(p, nodes_[node].depth);
    if (i != 0 && nodes_[node].ext == kNoValue) {
      nodes_[node].ext = static_cast<std::uint32_t>(ext_slots_.size());
      ext_slots_.emplace_back();
    }
    std::uint32_t& s =
        i == 0 ? nodes_[node].val0 : ext_slots_[nodes_[node].ext].slot[i];
    if (s == kNoValue) {
      s = static_cast<std::uint32_t>(values_.size());
      nodes_[node].slot_mask |= static_cast<std::uint16_t>(1u << i);
      values_.push_back(std::move(value));
    } else {
      values_[s] = std::move(value);
    }
    return values_[s];
  }

  template <typename F>
  void visit_node(std::uint32_t idx, F& fn) const {
    const Node& n = nodes_[idx];
    if (n.val0 != kNoValue) fn(Prefix::make(n.key, n.depth), values_[n.val0]);
    if (n.depth == 128) return;
    const ExtSlots* es = n.ext == kNoValue ? nullptr : &ext_slots_[n.ext];
    for (unsigned x = 0; x < 16; ++x) {
      // Slots whose base nibble is exactly `x` (low 4-e bits zero) come
      // before the child subtree at `x`: same base, shorter length.
      if (es != nullptr) {
        for (unsigned e = 1; e <= 3; ++e) {
          if ((x & ((1u << (4 - e)) - 1)) != 0) continue;
          const std::uint32_t s = es->slot[(1u << e) - 1 + (x >> (4 - e))];
          if (s == kNoValue) continue;
          Ipv6 b = n.key;
          b.set_nibble(n.depth >> 2, x);
          fn(Prefix::make(b, n.depth + static_cast<int>(e)), values_[s]);
        }
      }
      if (n.child[x] != 0) visit_node(n.child[x], fn);
    }
  }

  std::vector<Node> nodes_;
  std::vector<ExtSlots> ext_slots_;
  std::vector<T> values_;
};

}  // namespace sixdust
