#pragma once

#include <cstdint>

namespace sixdust {

/// xoshiro256++ PRNG, deterministically seeded via SplitMix64. Used wherever
/// a *sequence* of pseudo-random draws is needed (the single-value cases use
/// mix64 hashing directly — see hash.hpp).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli draw.
  bool chance(double p) { return unit() < p; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace sixdust
