#pragma once

#include <optional>
#include <vector>

#include "netbase/frozen_lpm.hpp"
#include "netbase/prefix_trie.hpp"

namespace sixdust {

/// A set of prefixes with coverage queries — used for blocklists and the
/// aliased-prefix filter. An address is "covered" when any member prefix
/// contains it.
///
/// Read-mostly consumers call freeze() once the set is complete (the
/// service blocklist at construction, the per-scan aliased set after
/// detection): coverage queries then run on a FrozenLpm snapshot instead
/// of walking the trie. add() after freeze() drops the snapshot and
/// returns to trie-backed queries; a frozen set is safe to query from any
/// number of threads concurrently.
class PrefixSet {
 public:
  void add(const Prefix& p);
  /// Compile the immutable lookup snapshot; idempotent.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_.has_value(); }
  [[nodiscard]] bool contains_exact(const Prefix& p) const;
  [[nodiscard]] bool covers(const Ipv6& a) const;
  /// Most-specific covering prefix, if any.
  [[nodiscard]] std::optional<Prefix> covering(const Ipv6& a) const;
  [[nodiscard]] std::size_t size() const { return trie_.size(); }
  [[nodiscard]] bool empty() const { return trie_.empty(); }
  [[nodiscard]] std::vector<Prefix> to_vector() const;

 private:
  PrefixTrie<char> trie_;
  std::optional<FrozenLpm<char>> frozen_;
};

}  // namespace sixdust
