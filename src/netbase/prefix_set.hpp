#pragma once

#include <vector>

#include "netbase/prefix_trie.hpp"

namespace sixdust {

/// A set of prefixes with coverage queries — used for blocklists and the
/// aliased-prefix filter. An address is "covered" when any member prefix
/// contains it.
class PrefixSet {
 public:
  void add(const Prefix& p);
  [[nodiscard]] bool contains_exact(const Prefix& p) const;
  [[nodiscard]] bool covers(const Ipv6& a) const;
  /// Most-specific covering prefix, if any.
  [[nodiscard]] std::optional<Prefix> covering(const Ipv6& a) const;
  [[nodiscard]] std::size_t size() const { return trie_.size(); }
  [[nodiscard]] bool empty() const { return trie_.empty(); }
  [[nodiscard]] std::vector<Prefix> to_vector() const;

 private:
  PrefixTrie<char> trie_;
};

}  // namespace sixdust
