#include "netbase/ipv6.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>

#include "obs/log.hpp"

namespace sixdust {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Parse a dotted-quad IPv4 tail into two 16-bit groups.
bool parse_v4_tail(std::string_view text, std::uint16_t& g0, std::uint16_t& g1) {
  std::array<unsigned, 4> oct{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return false;
    unsigned v = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<unsigned>(text[pos] - '0');
      if (v > 255) return false;
      ++pos;
      ++digits;
    }
    if (digits == 0 || digits > 3) return false;
    oct[static_cast<std::size_t>(i)] = v;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return false;
      ++pos;
    }
  }
  if (pos != text.size()) return false;
  g0 = static_cast<std::uint16_t>(oct[0] << 8 | oct[1]);
  g1 = static_cast<std::uint16_t>(oct[2] << 8 | oct[3]);
  return true;
}

}  // namespace

std::optional<Ipv6> Ipv6::parse(std::string_view text) {
  if (text.size() < 2) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  int n_before = 0;  // groups before "::"
  int n_after = 0;   // groups after "::"
  std::array<std::uint16_t, 8> before{};
  std::array<std::uint16_t, 8> after{};
  bool seen_gap = false;

  std::size_t pos = 0;
  if (text[0] == ':') {
    if (text[1] != ':') return std::nullopt;
    seen_gap = true;
    pos = 2;
  }

  while (pos < text.size()) {
    // An IPv4 dotted-quad tail occupies the final two groups.
    std::string_view rest = text.substr(pos);
    if (rest.find(':') == std::string_view::npos &&
        rest.find('.') != std::string_view::npos) {
      std::uint16_t g0 = 0;
      std::uint16_t g1 = 0;
      if (!parse_v4_tail(rest, g0, g1)) return std::nullopt;
      auto& arr = seen_gap ? after : before;
      auto& n = seen_gap ? n_after : n_before;
      if (n + 2 > 8) return std::nullopt;
      arr[static_cast<std::size_t>(n++)] = g0;
      arr[static_cast<std::size_t>(n++)] = g1;
      pos = text.size();
      break;
    }
    unsigned v = 0;
    int digits = 0;
    while (pos < text.size()) {
      const int d = hex_digit(text[pos]);
      if (d < 0) break;
      v = v << 4 | static_cast<unsigned>(d);
      ++pos;
      if (++digits > 4) return std::nullopt;
    }
    if (digits == 0) return std::nullopt;
    auto& arr = seen_gap ? after : before;
    auto& n = seen_gap ? n_after : n_before;
    if (n >= 8) return std::nullopt;
    arr[static_cast<std::size_t>(n++)] = static_cast<std::uint16_t>(v);

    if (pos == text.size()) break;
    if (text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (seen_gap) return std::nullopt;
      seen_gap = true;
      ++pos;
      if (pos == text.size()) break;
    } else if (pos == text.size()) {
      return std::nullopt;  // trailing single colon
    }
  }

  const int total = n_before + n_after;
  if (seen_gap) {
    if (total > 7) return std::nullopt;
  } else if (total != 8) {
    return std::nullopt;
  }

  int gi = 0;
  for (int i = 0; i < n_before; ++i) groups[static_cast<std::size_t>(gi++)] = before[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8 - total && seen_gap; ++i) groups[static_cast<std::size_t>(gi++)] = 0;
  for (int i = 0; i < n_after; ++i) groups[static_cast<std::size_t>(gi++)] = after[static_cast<std::size_t>(i)];

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = hi << 16 | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = lo << 16 | groups[static_cast<std::size_t>(i)];
  return from_words(hi, lo);
}

std::string Ipv6::str() const {
  std::array<std::uint16_t, 8> g{};
  for (int i = 0; i < 4; ++i) g[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
  for (int i = 0; i < 4; ++i) g[static_cast<std::size_t>(i + 4)] = static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));

  // Find the longest run of >= 2 zero groups (leftmost wins ties).
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (g[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && g[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(40);
  char buf[8];
  int i = 0;
  while (i < 8) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", g[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

Ipv6 ip(std::string_view text) {
  auto a = Ipv6::parse(text);
  if (!a) {
    Logger::global().error(
        "netbase", "bad IPv6 literal '" + std::string(text) + "'");
    std::abort();
  }
  return *a;
}

}  // namespace sixdust
