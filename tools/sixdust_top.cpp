// sixdust-top: curses-free terminal watcher for a live sixdust-serve
// daemon. Polls the HTTP telemetry endpoint's /stats and renders per-op
// QPS, server-side latency quantiles, epoch age, reader-lane state, and
// tile/ring utilization deltas. One screenful per poll; --raw appends
// frames instead of clearing (for logs and tests).

#include <cstdio>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "obs/json_mini.hpp"
#include "serve/http.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-top — live terminal watcher for sixdust-serve

usage: sixdust-top [options]
  --connect SPEC     the daemon's --http endpoint: HOST:PORT or
                     unix:/path.sock (default 127.0.0.1:7654)
  --interval-ms N    poll cadence (default 1000)
  --iterations N     frames to render, 0 = until interrupted (default 0)
  --connect-timeout-ms N  keep retrying the first poll this long
                     (default 0 = one attempt)
  --raw              no screen clearing: append frames (CI / piping)
  --help

exit status: 0 = clean; 2 = endpoint unreachable on the first poll.
)";

struct OpRow {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;
};

struct Frame {
  std::uint64_t now_ms = 0;
  std::uint64_t uptime_ms = 0;
  long long epoch = -1;
  std::uint64_t published = 0;
  std::uint64_t age_ms = 0;
  bool healthy = true;
  std::vector<std::string> reasons;
  std::uint64_t slow = 0;
  std::uint64_t overruns = 0;
  std::vector<OpRow> ops;
  std::uint64_t tile_steps = 0, tile_idle = 0, ring_full = 0, ring_empty = 0;
  std::uint64_t lanes = 0, lane_conns = 0, lane_inbox = 0;
};

double num(const JsonValue* v) { return v == nullptr ? 0.0 : v->number; }
std::uint64_t u64(const JsonValue* v) { return v == nullptr ? 0 : v->u64(); }

bool parse_frame(const std::string& body, Frame* out) {
  const auto doc = json_parse(body);
  if (!doc || !doc->is_object()) return false;
  out->now_ms = u64(doc->find("now_ms"));
  out->uptime_ms = u64(doc->find("uptime_ms"));
  if (const JsonValue* e = doc->find("epoch"); e != nullptr) {
    out->epoch = e->find("current") ? e->find("current")->i64() : -1;
    out->published = u64(e->find("published"));
    out->age_ms = u64(e->find("age_ms"));
  }
  if (const JsonValue* w = doc->find("watchdog"); w != nullptr) {
    const JsonValue* h = w->find("healthy");
    out->healthy = h == nullptr || h->boolean;
    out->overruns = u64(w->find("epoch_overruns"));
    if (const JsonValue* r = w->find("reasons"); r != nullptr && r->is_array())
      for (const JsonValue& reason : r->arr)
        out->reasons.push_back(reason.str);
  }
  if (const JsonValue* s = doc->find("slow_queries"); s != nullptr)
    out->slow = u64(s->find("count"));
  if (const JsonValue* ops = doc->find("ops"); ops != nullptr)
    for (const auto& [name, v] : ops->obj) {
      OpRow row;
      row.name = name;
      row.count = u64(v.find("count"));
      row.p50 = num(v.find("p50_us"));
      row.p90 = num(v.find("p90_us"));
      row.p99 = num(v.find("p99_us"));
      row.p999 = num(v.find("p999_us"));
      row.max = num(v.find("max_us"));
      out->ops.push_back(std::move(row));
    }
  if (const JsonValue* r = doc->find("rings"); r != nullptr) {
    out->tile_steps = u64(r->find("tile_steps"));
    out->tile_idle = u64(r->find("tile_idle_polls"));
    out->ring_full = u64(r->find("ring_full_stalls"));
    out->ring_empty = u64(r->find("ring_empty_stalls"));
  }
  if (const JsonValue* l = doc->find("lanes"); l != nullptr && l->is_array()) {
    out->lanes = l->arr.size();
    for (const JsonValue& lane : l->arr) {
      out->lane_conns += u64(lane.find("conns"));
      out->lane_inbox += u64(lane.find("inbox"));
    }
  }
  return true;
}

double rate(std::uint64_t cur, std::uint64_t prev, double dt_s) {
  if (dt_s <= 0 || cur < prev) return 0.0;
  return static_cast<double>(cur - prev) / dt_s;
}

void render(const Frame& f, const Frame* prev, bool raw) {
  if (!raw) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
  const double dt_s =
      prev != nullptr && f.now_ms > prev->now_ms
          ? static_cast<double>(f.now_ms - prev->now_ms) / 1000.0
          : 0.0;

  std::printf("sixdust-top — epoch %lld (published %llu, age %.1fs)  "
              "up %.0fs  %s\n",
              f.epoch, static_cast<unsigned long long>(f.published),
              static_cast<double>(f.age_ms) / 1000.0,
              static_cast<double>(f.uptime_ms) / 1000.0,
              f.healthy ? "[healthy]" : "[UNHEALTHY]");
  for (const std::string& r : f.reasons) std::printf("  !! %s\n", r.c_str());

  std::printf("%-11s %10s %9s %9s %9s %9s %9s %9s\n", "op", "count", "qps",
              "p50us", "p90us", "p99us", "p999us", "maxus");
  for (const OpRow& op : f.ops) {
    double qps = 0;
    if (prev != nullptr)
      for (const OpRow& p : prev->ops)
        if (p.name == op.name) {
          qps = rate(op.count, p.count, dt_s);
          break;
        }
    std::printf("%-11s %10llu %9.0f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                op.name.c_str(), static_cast<unsigned long long>(op.count),
                qps, op.p50, op.p90, op.p99, op.p999, op.max);
  }

  const std::uint64_t steps_d =
      prev != nullptr && f.tile_steps >= prev->tile_steps
          ? f.tile_steps - prev->tile_steps
          : f.tile_steps;
  const std::uint64_t idle_d = prev != nullptr && f.tile_idle >= prev->tile_idle
                                   ? f.tile_idle - prev->tile_idle
                                   : f.tile_idle;
  const double util =
      steps_d + idle_d > 0
          ? 100.0 * static_cast<double>(steps_d) /
                static_cast<double>(steps_d + idle_d)
          : 0.0;
  std::printf("lanes %llu (conns %llu, inbox %llu)   slow %llu   "
              "overruns %llu\n",
              static_cast<unsigned long long>(f.lanes),
              static_cast<unsigned long long>(f.lane_conns),
              static_cast<unsigned long long>(f.lane_inbox),
              static_cast<unsigned long long>(f.slow),
              static_cast<unsigned long long>(f.overruns));
  std::printf("tiles: +%llu steps, +%llu idle (%.0f%% busy)   "
              "ring stalls: full %llu, empty %llu\n",
              static_cast<unsigned long long>(steps_d),
              static_cast<unsigned long long>(idle_d), util,
              static_cast<unsigned long long>(f.ring_full),
              static_cast<unsigned long long>(f.ring_empty));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  const std::string spec_str = args.get("connect", "127.0.0.1:7654");
  const auto target = serve::parse_listen_spec(spec_str);
  if (!target) cli::die("bad --connect spec '" + spec_str + "'");
  const auto interval =
      std::chrono::milliseconds(args.get_u64("interval-ms", 1000));
  const std::uint64_t iterations = args.get_u64("iterations", 0);
  const int connect_timeout =
      static_cast<int>(args.get_u64("connect-timeout-ms", 0));
  const bool raw = args.has("raw");

  Frame prev;
  bool have_prev = false;
  for (std::uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
    const auto res =
        serve::http_get(*target, "/stats", 2000, i == 0 ? connect_timeout : 0);
    if (!res || res->status != 200) {
      if (!have_prev) {
        std::fprintf(stderr, "error: cannot fetch /stats from %s\n",
                     target->str().c_str());
        return 2;
      }
      // Transient failure mid-watch: keep trying at the poll cadence.
      std::this_thread::sleep_for(interval);
      continue;
    }
    Frame cur;
    if (!parse_frame(res->body, &cur)) {
      std::fprintf(stderr, "error: unparsable /stats payload\n");
      return 2;
    }
    render(cur, have_prev ? &prev : nullptr, raw);
    prev = std::move(cur);
    have_prev = true;
    if (iterations == 0 || i + 1 < iterations)
      std::this_thread::sleep_for(interval);
  }
  return 0;
}
