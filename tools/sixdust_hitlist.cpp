// sixdust-hitlist: run the full hitlist service pipeline for N scans and
// publish its data — per-scan responsive lists, the aliased-prefix list,
// the exclusion pool, GFW taint records, and a binary archive.

#include <cstdio>

#include <fstream>
#include <optional>

#include "cli.hpp"
#include "hitlist/archive.hpp"
#include "hitlist/report_gen.hpp"
#include "hitlist/service.hpp"
#include "netbase/addrio.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "topo/world_builder.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-hitlist — run the IPv6 Hitlist service pipeline

usage: sixdust-hitlist [options]
  --scans N          number of monthly scans to run (default 12, max 46)
  --world-seed N     world seed (default 42)
  --world-scale X    world scale (default 0.1 = test world)
  --no-gfw-filter    run the pre-2022 pipeline (published, spiky view)
  --gfw-filter-from N  filter deployment scan (default 43)
  --threads N        worker threads for the probe stages, 0 = all cores
                     (default 1; results are identical for every value)
  --pipeline         run each step as a tile-and-ring pipeline (overlaps
                     probe-gen, scan, GFW classify, and traceroute;
                     byte-identical output, needs --threads >= 2)
  --topo-out FILE    write the pipeline topology (tiles, rings, links) as
                     JSON and exit
  --blocklist FILE   prefix list of opt-out networks
  --outdir DIR       publish data files into DIR (address/prefix lists,
                     markdown report, timeline + AS-distribution CSVs)
  --archive FILE     additionally save the binary archive
  --metrics-out FILE write the run-telemetry snapshot as JSON
  --trace-out FILE   write a Chrome trace-event file of the run (open in
                     Perfetto / chrome://tracing)
  --log-level LEVEL  debug | info | warn (default) | error | off
  --help
)";

/// Write `content` to `path`; any open/write failure is a hard error —
/// telemetry silently going missing defeats its purpose.
void write_file_or_die(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) cli::die("cannot open '" + path + "' for writing");
  f << content;
  f.flush();
  if (!f.good()) cli::die("cannot write '" + path + "'");
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level"));
    if (!level) cli::die("unknown log level '" + args.get("log-level") + "'");
    Logger::global().set_level(*level);
  }

  WorldConfig wc;
  wc.seed = args.get_u64("world-seed", 42);
  wc.scale = args.get_double("world-scale", 0.1);
  wc.tail_as_count = static_cast<int>(args.get_u64("tail-ases", 200));
  const auto world = build_world(wc);

  std::optional<TraceRecorder> tracer;
  if (args.has("trace-out")) tracer.emplace();

  HitlistService::Config sc;
  if (tracer) sc.tracer = &*tracer;
  sc.enable_gfw_filter = !args.has("no-gfw-filter");
  sc.gfw_filter_from_scan =
      static_cast<int>(args.get_u64("gfw-filter-from", 43));
  sc.threads = static_cast<unsigned>(args.get_u64("threads", 1));
  sc.pipeline = args.has("pipeline");
  if (args.has("blocklist")) {
    auto prefixes = read_prefix_file(args.get("blocklist"));
    if (!prefixes) cli::die("cannot read blocklist");
    sc.blocklist_prefixes = std::move(*prefixes);
  }
  HitlistService service(sc);

  if (args.has("topo-out")) {
    write_file_or_die(args.get("topo-out"), service.topology_json());
    std::printf("topology written to %s\n", args.get("topo-out").c_str());
    return 0;
  }

  const int scans = static_cast<int>(args.get_u64("scans", 12));
  for (int i = 0; i < scans && i < kTimelineScans; ++i) {
    const auto outcome = service.step(*world, ScanDate{i});
    std::printf(
        "scan %2d (%s): input=%zu targets=%zu aliased=%zu responsive=%zu\n",
        i, outcome.date.str().c_str(), outcome.input_total,
        outcome.scan_targets, outcome.aliased_count, outcome.responsive_any);
  }

  const auto& gfw = service.gfw();
  std::printf("\nGFW taint records: %zu; exclusion pool: %zu; aliased: %zu\n",
              gfw.tainted_count(), service.unresponsive_pool().size(),
              service.aliased_list().size());

  if (args.has("outdir")) {
    const std::string dir = args.get("outdir");
    // Final responsive set (cleaned).
    std::vector<Ipv6> responsive;
    for (const auto& [a, mask] :
         service.history().at(scans - 1).responsive) {
      if (gfw.tainted(a) && (mask & ~proto_bit(Proto::Udp53)) == 0) continue;
      responsive.push_back(a);
    }
    if (!write_address_file(dir + "/responsive.txt", responsive,
                            "responsive addresses (GFW-cleaned)"))
      cli::die("cannot write into '" + dir + "'");
    (void)write_prefix_file(dir + "/aliased.txt", service.aliased_list(),
                            "aliased (fully responsive) prefixes");
    (void)write_address_file(dir + "/unresponsive-pool.txt",
                             service.unresponsive_pool(),
                             "30-day-filter exclusion pool");
    std::vector<Ipv6> tainted;
    for (const auto& [a, rec] : gfw.taint_records()) tainted.push_back(a);
    std::sort(tainted.begin(), tainted.end());
    (void)write_address_file(dir + "/gfw-tainted.txt", tainted,
                             "addresses with >=1 injected DNS response");
    ServiceReport report(&service, &world->rib(), &world->registry());
    std::ofstream(dir + "/REPORT.md") << report.markdown();
    std::ofstream(dir + "/timeline.csv") << report.timeline_csv();
    std::ofstream(dir + "/as-distribution.csv")
        << report.as_distribution_csv();
    std::printf("published data files into %s/\n", dir.c_str());
  }

  if (args.has("archive")) {
    // Fingerprint = world seed, so archives of different run lengths over
    // the same world stay comparable with sixdust-diff.
    const std::uint64_t fp = wc.seed;
    if (!ServiceArchive::save(service, fp, args.get("archive")))
      cli::die("cannot write archive");
    std::printf("archive saved to %s (fingerprint %llu)\n",
                args.get("archive").c_str(),
                static_cast<unsigned long long>(fp));
  }

  if (args.has("metrics-out")) {
    write_file_or_die(args.get("metrics-out"),
                      service.metrics().snapshot().to_json());
    std::printf("metrics written to %s\n", args.get("metrics-out").c_str());
  }

  if (tracer) {
    write_file_or_die(args.get("trace-out"), tracer->chrome_json());
    std::printf("trace written to %s (%zu spans dropped)\n",
                args.get("trace-out").c_str(),
                static_cast<std::size_t>(tracer->dropped()));
  }
  return 0;
}
