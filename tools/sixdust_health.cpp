// sixdust-health: longitudinal run-health analyzer. Compares two or more
// sixdust-metrics/1 snapshots (see --metrics-out on sixdust-scan /
// sixdust-hitlist) and flags drift across the audit dimensions the paper's
// Section 4 checks by hand: per-protocol responsiveness, GFW injection
// share, aliased-prefix coverage, and input-source attribution.
//
// Exit status: 0 = healthy, 1 = drift flagged, 2 = usage or I/O error.

#include <cstdio>

#include <fstream>
#include <sstream>

#include "analysis/health.hpp"
#include "cli.hpp"
#include "obs/json_mini.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-health — drift report across run-metrics snapshots

usage: sixdust-health [options] BASELINE.json CURRENT.json [MORE.json...]
  positional arguments are sixdust-metrics/1 files in chronological
  order; each adjacent pair is compared and drift beyond the thresholds
  is flagged.

  --th-resp X      responsive-rate delta threshold     (default 0.05)
  --th-gfw X       GFW injected-share delta threshold  (default 0.02)
  --th-alias X     aliased-coverage relative threshold (default 0.25)
  --th-input X     input-source share delta threshold  (default 0.10)
  --trace FILE     also summarize a sixdust-trace/1 Chrome trace file
  --out FILE       write the report there instead of stdout
  --help

exit status: 0 healthy, 1 drift flagged, 2 usage/read error
)";

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

MetricsSnapshot read_snapshot(const std::string& path) {
  std::ifstream f(path);
  if (!f) fail("cannot read '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  auto snap = parse_metrics_snapshot(buf.str());
  if (!snap) fail("'" + path + "' is not a sixdust-metrics/1 snapshot");
  return std::move(*snap);
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  const auto& files = args.positional();
  if (files.size() < 2) fail("need at least two snapshot files (--help)");

  HealthThresholds th;
  th.resp_rate_delta = args.get_double("th-resp", th.resp_rate_delta);
  th.gfw_share_delta = args.get_double("th-gfw", th.gfw_share_delta);
  th.aliased_rel_delta = args.get_double("th-alias", th.aliased_rel_delta);
  th.input_share_delta = args.get_double("th-input", th.input_share_delta);

  std::vector<MetricsSnapshot> snaps;
  snaps.reserve(files.size());
  for (const auto& f : files) snaps.push_back(read_snapshot(f));

  std::string out;
  std::size_t total_findings = 0;
  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) {
    const HealthReport report = analyze_health(snaps[i], snaps[i + 1], th);
    total_findings += report.findings.size();
    out += "== " + files[i] + " -> " + files[i + 1] + "\n";
    out += report.text();
  }

  if (args.has("trace")) {
    const std::string path = args.get("trace");
    std::ifstream f(path);
    if (!f) fail("cannot read '" + path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    const auto summary = trace_summary(buf.str());
    if (!summary) fail("'" + path + "' is not a sixdust-trace/1 file");
    out += *summary;
  }

  if (args.has("out")) {
    std::ofstream f(args.get("out"));
    if (!f) fail("cannot write '" + args.get("out") + "'");
    f << out;
    f.flush();
    if (!f.good()) fail("short write to '" + args.get("out") + "'");
  } else {
    std::fputs(out.c_str(), stdout);
  }
  return total_findings == 0 ? 0 : 1;
}
