// sixdust-loadgen: replay a query workload against a live sixdust-serve
// daemon at configurable concurrency; report p50/p95/p99 latency,
// throughput, and protocol-coherence violations (dropped responses or an
// epoch stamp going backwards on a connection).

#include <cstdio>

#include <fstream>

#include "cli.hpp"
#include "serve/loadgen.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-loadgen — client load generator for sixdust-serve

usage: sixdust-loadgen [options]
  --connect SPEC     server endpoint: HOST:PORT or unix:/path.sock
                     (default 127.0.0.1:7653)
  --concurrency N    concurrent connections (default 4)
  --requests N       requests per connection (default 1000)
  --seed N           workload seed (default 1)
  --connect-timeout-ms N  keep retrying the first connect this long
                     (default 0 = one attempt)
  --mix L,O,A        op mix percentages for lookup,origin,alias — the
                     remainder of 100 is epoch-info (default 70,15,10)
  --json-out FILE    also write the summary as one JSON object
                     (sixdust-loadgen/1); '-' = stdout
  --help

exit status: 0 = clean run; 1 = dropped or incoherent responses; 2 =
server unreachable.
)";

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  const std::string spec_str = args.get("connect", "127.0.0.1:7653");
  const auto target = serve::parse_listen_spec(spec_str);
  if (!target) cli::die("bad --connect spec '" + spec_str + "'");

  serve::LoadgenConfig cfg;
  cfg.target = *target;
  cfg.concurrency = static_cast<unsigned>(args.get_u64("concurrency", 4));
  cfg.requests = args.get_u64("requests", 1000);
  cfg.seed = args.get_u64("seed", 1);
  cfg.connect_timeout_ms =
      static_cast<int>(args.get_u64("connect-timeout-ms", 0));
  if (args.has("mix")) {
    unsigned l = 0, o = 0, a = 0;
    if (std::sscanf(args.get("mix").c_str(), "%u,%u,%u", &l, &o, &a) != 3 ||
        l + o + a > 100)
      cli::die("bad --mix (want L,O,A percentages summing to <= 100)");
    cfg.pct_lookup = l;
    cfg.pct_origin = o;
    cfg.pct_alias = a;
  }

  // Fail fast on an unwritable summary path, before generating any load.
  const std::string json_out = args.get("json-out", "");
  if (!json_out.empty() && json_out != "-") {
    std::ofstream probe(json_out);
    if (!probe) cli::die("cannot open '" + json_out + "' for writing");
  }

  serve::LoadgenReport report;
  std::string error;
  if (!serve::run_loadgen(cfg, &report, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::fputs(report.str().c_str(), stdout);
  if (json_out == "-") {
    std::fputs(report.json().c_str(), stdout);
  } else if (!json_out.empty()) {
    std::ofstream f(json_out);
    f << report.json();
    f.flush();
    if (!f.good()) cli::die("cannot write '" + json_out + "'");
  }
  if (report.dropped > 0 || report.incoherent > 0) {
    std::fprintf(stderr, "error: %llu dropped, %llu incoherent responses\n",
                 static_cast<unsigned long long>(report.dropped),
                 static_cast<unsigned long long>(report.incoherent));
    return 1;
  }
  return 0;
}
