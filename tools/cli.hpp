#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sixdust::cli {

/// Minimal long-option parser for the sixdust command-line tools:
/// `--name value` or `--name=value`; bare `--flag` yields "true";
/// positional arguments are collected in order.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        options_[arg] = argv[++i];
      } else {
        options_[arg] = "true";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return options_.contains(name);
  }

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const {
    auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const {
    auto it = options_.find(name);
    if (it == options_.end()) return fallback;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    auto it = options_.find(name);
    if (it == options_.end()) return fallback;
    return std::strtod(it->second.c_str(), nullptr);
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Prints usage and exits when --help was passed.
  void usage_on_help(const char* text) const {
    if (!has("help")) return;
    std::fputs(text, stdout);
    std::exit(0);
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

[[noreturn]] inline void die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace sixdust::cli
