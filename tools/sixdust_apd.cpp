// sixdust-apd: run the multi-level aliased prefix detection on an input
// address list and emit the aliased-prefix list — the standalone face of
// alias::AliasDetector, with optional TCP-fingerprint and Too-Big-Trick
// verification of the findings.

#include <cstdio>

#include "alias/apd.hpp"
#include "alias/tbt.hpp"
#include "alias/tcp_fp.hpp"
#include "cli.hpp"
#include "netbase/addrio.hpp"
#include "topo/world_builder.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-apd — multi-level aliased prefix detection

usage: sixdust-apd [options]
  --input FILE       candidate address list (default: the world's public
                     candidates)
  --scan N           scan date index (default 45)
  --rounds N         detection rounds to merge (default 3)
  --loss P           probe loss probability (default 0.01)
  --world-seed N     world seed (default 42)
  --world-scale X    world scale (default 0.1)
  --verify           fingerprint the detected prefixes (TCP + TBT)
  --out FILE         write the aliased prefix list
  --help
)";

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  WorldConfig wc;
  wc.seed = args.get_u64("world-seed", 42);
  wc.scale = args.get_double("world-scale", 0.1);
  wc.tail_as_count = static_cast<int>(args.get_u64("tail-ases", 200));
  const auto world = build_world(wc);
  const int scan = static_cast<int>(args.get_u64("scan", 45));

  std::vector<Ipv6> input;
  if (args.has("input")) {
    auto loaded = read_address_file(args.get("input"));
    if (!loaded) cli::die("cannot read '" + args.get("input") + "'");
    input = std::move(*loaded);
  } else {
    std::vector<KnownAddress> known;
    world->enumerate_known(ScanDate{scan}, known);
    for (const auto& k : known) input.push_back(k.addr);
  }
  std::printf("input: %zu addresses\n", input.size());

  AliasDetector::Config dc;
  dc.loss = args.get_double("loss", 0.01);
  AliasDetector detector(dc);
  AliasDetector::Detection detection;
  const int rounds = static_cast<int>(args.get_u64("rounds", 3));
  for (int r = 0; r < rounds; ++r)
    detection = detector.detect(*world, input, ScanDate{scan - rounds + 1 + r});

  std::printf("candidates tested: %llu, probes: %llu\n",
              static_cast<unsigned long long>(detection.candidates_tested),
              static_cast<unsigned long long>(detection.probes_sent));
  std::printf("aliased prefixes: %zu\n", detection.aliased.size());

  std::size_t covered = 0;
  for (const auto& a : input)
    if (detection.aliased_set.covers(a)) ++covered;
  std::printf("input addresses covered (would be filtered): %zu (%.1f %%)\n",
              covered,
              input.empty() ? 0.0
                            : 100.0 * static_cast<double>(covered) /
                                  static_cast<double>(input.size()));

  if (args.has("verify")) {
    TcpFingerprinter fper(TcpFingerprinter::Config{});
    const auto fp = fper.run(*world, detection.aliased, ScanDate{scan});
    std::printf("TCP fingerprints: %zu comparable, %zu uniform\n",
                fp.fingerprintable, fp.uniform);
    world->reset_pmtu();
    TooBigTrick tbt(TooBigTrick::Config{});
    const auto t = tbt.run(*world, detection.aliased, ScanDate{scan});
    std::printf("Too Big Trick: %zu usable, %zu single-machine, %zu "
                "load-balanced, %zu independent\n",
                t.usable, t.all_shared, t.partial_shared, t.none_shared);
  }

  if (args.has("out")) {
    if (!write_prefix_file(args.get("out"), detection.aliased,
                           "sixdust-apd aliased prefixes"))
      cli::die("cannot write '" + args.get("out") + "'");
    std::printf("wrote %zu prefixes to %s\n", detection.aliased.size(),
                args.get("out").c_str());
  }
  return 0;
}
