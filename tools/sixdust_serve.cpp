// sixdust-serve: the long-running hitlist daemon. Runs scan epochs
// continuously and serves concurrent hitlist/alias/origin queries against
// immutable per-epoch snapshots over a length-prefixed binary protocol
// (see DESIGN.md §13). Pair with sixdust-loadgen for client load.

#include <cstdio>

#include <chrono>
#include <fstream>
#include <optional>
#include <thread>

#include "cli.hpp"
#include "netbase/addrio.hpp"
#include "obs/log.hpp"
#include "serve/daemon.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "topo/world_builder.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-serve — long-running hitlist daemon with a query front-end

usage: sixdust-serve [options]
  --listen SPEC      where to serve queries: HOST:PORT (TCP, port 0 =
                     ephemeral) or unix:/path.sock (default 127.0.0.1:7653)
  --readers N        poll lanes serving connections (default 2)
  --epochs N         scan epochs to run, 0 = the full timeline (default 12)
  --epoch-interval-ms N  pause between epochs while serving (default 0)
  --linger-ms N      keep serving this long after the last epoch (default 0)
  --world-seed N     world seed (default 42)
  --world-scale X    world scale (default 0.1 = test world)
  --threads N        worker threads for the probe stages, 0 = all cores
  --pipeline         run each epoch as a tile-and-ring pipeline
  --no-gfw-filter    run the pre-2022 pipeline
  --blocklist FILE   prefix list of opt-out networks
  --snapshot-log FILE  write the per-epoch record stream
                     (sixdust-serve-epochs/1 JSON) on exit
  --metrics-out FILE write the run-telemetry snapshot as JSON on exit
  --metrics-interval-ms N  also rewrite --metrics-out atomically every N ms
                     while running (temp + rename; default 0 = exit only)
  --http SPEC        serve the live telemetry plane over HTTP/1.0 on a
                     second socket: /metrics /stats /healthz /timeseries
                     (HOST:PORT or unix:/path.sock; default off)
  --sample-interval-ms N  time-series + watchdog sampling cadence
                     (default 1000)
  --slow-query-us N  slow-query threshold (default 10000)
  --slow-query-log FILE  append slow queries as JSONL
  --epoch-budget-ms N  watchdog budget for one freeze+publish swap
                     (default 5000)
  --timeseries-out FILE  write the sixdust-timeseries/1 JSONL on exit
  --log-level LEVEL  debug | info | warn (default) | error | off
  --help

The stable half of every export is byte-identical to a batch
sixdust-hitlist run of the same world — serving never perturbs the
simulation (the serve.* metrics are volatile by design).
)";

/// Fail fast on output paths: a daemon must refuse to start if it will be
/// unable to publish its telemetry hours later.
void require_writable(const std::string& path) {
  std::ofstream f(path);
  if (!f) cli::die("cannot open '" + path + "' for writing");
}

void write_file_or_die(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) cli::die("cannot open '" + path + "' for writing");
  f << content;
  f.flush();
  if (!f.good()) cli::die("cannot write '" + path + "'");
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level"));
    if (!level) cli::die("unknown log level '" + args.get("log-level") + "'");
    Logger::global().set_level(*level);
  }

  // Validate everything that can fail *before* the (slow) world build.
  const std::string listen_str = args.get("listen", "127.0.0.1:7653");
  const auto listen = serve::parse_listen_spec(listen_str);
  if (!listen)
    cli::die("bad --listen spec '" + listen_str +
             "' (want HOST:PORT or unix:/path.sock)");
  std::optional<serve::ListenSpec> http;
  if (args.has("http")) {
    const std::string http_str = args.get("http");
    http = serve::parse_listen_spec(http_str);
    if (!http)
      cli::die("bad --http spec '" + http_str +
               "' (want HOST:PORT or unix:/path.sock)");
  }
  if (args.has("metrics-out")) require_writable(args.get("metrics-out"));
  if (args.has("snapshot-log")) require_writable(args.get("snapshot-log"));
  if (args.has("timeseries-out")) require_writable(args.get("timeseries-out"));

  WorldConfig wc;
  wc.seed = args.get_u64("world-seed", 42);
  wc.scale = args.get_double("world-scale", 0.1);
  const auto world = build_world(wc);

  HitlistService::Config sc;
  sc.enable_gfw_filter = !args.has("no-gfw-filter");
  sc.threads = static_cast<unsigned>(args.get_u64("threads", 1));
  sc.pipeline = args.has("pipeline");
  if (args.has("blocklist")) {
    auto prefixes = read_prefix_file(args.get("blocklist"));
    if (!prefixes) cli::die("cannot read blocklist");
    sc.blocklist_prefixes = std::move(*prefixes);
  }
  HitlistService service(sc);

  serve::SnapshotManager snaps(&service.metrics());

  serve::LiveTelemetry::Config tcfg;
  tcfg.metrics = &service.metrics();
  tcfg.snaps = &snaps;
  tcfg.sample_interval_ms = args.get_u64("sample-interval-ms", 1000);
  tcfg.metrics_out = args.get("metrics-out", "");
  tcfg.metrics_interval_ms = args.get_u64("metrics-interval-ms", 0);
  tcfg.slow_query_us = args.get_u64("slow-query-us", 10000);
  tcfg.slow_query_log = args.get("slow-query-log", "");
  tcfg.epoch_swap_budget_ms = args.get_u64("epoch-budget-ms", 5000);
  serve::LiveTelemetry telemetry(tcfg);

  serve::Server::Config server_cfg;
  server_cfg.listen = *listen;
  server_cfg.readers = static_cast<unsigned>(args.get_u64("readers", 2));
  server_cfg.metrics = &service.metrics();
  server_cfg.pool = service.pool();  // null at --threads 1: plain threads
  server_cfg.telemetry = &telemetry;
  serve::Server server(server_cfg, &snaps);
  std::string error;
  if (!server.start(&error)) cli::die("cannot serve: " + error);
  telemetry.set_server(&server);
  if (!telemetry.start(&error)) cli::die("cannot start telemetry: " + error);
  std::printf("serving on %s\n", server.endpoint().c_str());

  std::optional<serve::HttpServer> http_server;
  if (http) {
    serve::HttpServer::Config hcfg;
    hcfg.listen = *http;
    hcfg.metrics = &service.metrics();
    hcfg.pool = service.pool();
    hcfg.handler = serve::scrape_handler(&service.metrics(), &telemetry);
    http_server.emplace(std::move(hcfg));
    if (!http_server->start(&error)) cli::die("cannot serve http: " + error);
    std::printf("telemetry on http://%s\n", http_server->endpoint().c_str());
  }

  int epochs = static_cast<int>(args.get_u64("epochs", 12));
  if (epochs <= 0 || epochs > kTimelineScans) epochs = kTimelineScans;
  const auto interval =
      std::chrono::milliseconds(args.get_u64("epoch-interval-ms", 0));

  serve::EpochPublisher publisher(&service, world.get(), &snaps, &telemetry);
  service.run(*world, epochs, [&](const HitlistService::ScanOutcome& o) {
    publisher.on_epoch(o);
    std::printf("epoch %2d (%s): input=%zu targets=%zu aliased=%zu "
                "responsive=%zu\n",
                o.date.index, o.date.str().c_str(), o.input_total,
                o.scan_targets, o.aliased_count, o.responsive_any);
    std::fflush(stdout);
    if (interval.count() > 0) std::this_thread::sleep_for(interval);
  });

  const auto linger = std::chrono::milliseconds(args.get_u64("linger-ms", 0));
  if (linger.count() > 0) std::this_thread::sleep_for(linger);
  if (http_server) http_server->stop();
  telemetry.stop();
  server.stop();

  if (args.has("timeseries-out"))
    write_file_or_die(args.get("timeseries-out"), telemetry.timeseries_jsonl());
  if (args.has("snapshot-log"))
    write_file_or_die(args.get("snapshot-log"), publisher.records_json());
  if (args.has("metrics-out"))
    write_file_or_die(args.get("metrics-out"),
                      service.metrics().snapshot().to_json());

  const auto snap = snaps.current();
  std::printf("served %llu epoch swaps; final epoch %d (%llu responsive)\n",
              static_cast<unsigned long long>(snaps.published()),
              snap ? snap->epoch() : -1,
              snap ? static_cast<unsigned long long>(snap->info().responsive)
                   : 0ULL);
  return 0;
}
