// sixdust-tga: generate IPv6 target candidates from a seed list with any
// of the implemented generation algorithms, optionally scanning the
// candidates to measure the hit rate.

#include <cstdio>
#include <fstream>
#include <memory>
#include <unordered_set>

#include "cli.hpp"
#include "core/thread_pool.hpp"
#include "netbase/addrio.hpp"
#include "obs/metrics.hpp"
#include "scanner/zmap6.hpp"
#include "tga/distance_clustering.hpp"
#include "tga/entropyip.hpp"
#include "tga/sixgan.hpp"
#include "tga/sixgraph.hpp"
#include "tga/sixtree.hpp"
#include "tga/sixveclm.hpp"
#include "topo/world_builder.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-tga — IPv6 target generation

usage: sixdust-tga --algorithm NAME [options]
  --algorithm NAME   6tree | 6graph | 6gan | 6veclm | dc | entropyip
  --seeds FILE       seed address list (default: responsive addresses of
                     the simulated world's public candidates)
  --budget N         candidate budget (default 10000)
  --threads N        worker threads for generation, 0 = all cores
                     (default 1; output is byte-identical at any count)
  --scan             scan the candidates and report the hit rate
  --world-seed N     world seed (default 42)
  --world-scale X    world scale (default 0.1)
  --out FILE         write generated candidates
  --metrics-out FILE write the tga.* telemetry snapshot as JSON
  --help
)";

/// Write `content` to `path`; any open/write failure is a hard error —
/// telemetry silently going missing defeats its purpose.
void write_file_or_die(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) cli::die("cannot open '" + path + "' for writing");
  f << content;
  f.flush();
  if (!f.good()) cli::die("cannot write '" + path + "'");
}

std::unique_ptr<TargetGenerator> make_generator(const std::string& name) {
  if (name == "6tree") return std::make_unique<SixTree>(SixTree::Config{});
  if (name == "6graph") return std::make_unique<SixGraph>(SixGraph::Config{});
  if (name == "6gan") return std::make_unique<SixGan>(SixGan::Config{});
  if (name == "6veclm") return std::make_unique<SixVecLm>(SixVecLm::Config{});
  if (name == "dc")
    return std::make_unique<DistanceClustering>(DistanceClustering::Config{});
  if (name == "entropyip")
    return std::make_unique<EntropyIp>(EntropyIp::Config{});
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  auto generator = make_generator(args.get("algorithm", "6tree"));
  if (generator == nullptr)
    cli::die("unknown algorithm '" + args.get("algorithm") + "'");

  const auto pool =
      ThreadPool::create(static_cast<unsigned>(args.get_u64("threads", 1)));
  MetricsRegistry metrics;
  generator->set_pool(pool.get());
  generator->set_metrics(&metrics);

  WorldConfig wc;
  wc.seed = args.get_u64("world-seed", 42);
  wc.scale = args.get_double("world-scale", 0.1);
  wc.tail_as_count = static_cast<int>(args.get_u64("tail-ases", 200));
  const auto world = build_world(wc);
  const ScanDate date{45};

  std::vector<Ipv6> seeds;
  if (args.has("seeds")) {
    auto loaded = read_address_file(args.get("seeds"));
    if (!loaded) cli::die("cannot read '" + args.get("seeds") + "'");
    seeds = std::move(*loaded);
  } else {
    std::vector<KnownAddress> known;
    world->enumerate_known(date, known);
    for (const auto& k : known)
      if (world->truth_host(k.addr, date)) seeds.push_back(k.addr);
  }
  std::printf("%s: %zu seeds\n", generator->name().c_str(), seeds.size());

  const auto candidates =
      generator->generate(seeds, args.get_u64("budget", 10000));
  std::printf("generated %zu candidates\n", candidates.size());

  if (args.has("scan")) {
    Zmap6 zmap(Zmap6::Config{.seed = 77, .loss = 0.01, .retries = 1});
    std::unordered_set<Ipv6, Ipv6Hasher> responsive;
    for (Proto p : kAllProtos) {
      const auto result = zmap.scan(*world, candidates, p, date);
      for (const auto& rec : result.responsive) responsive.insert(rec.target);
    }
    std::printf("responsive candidates: %zu (hit rate %.2f %%)\n",
                responsive.size(),
                candidates.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(responsive.size()) /
                          static_cast<double>(candidates.size()));
  }

  if (args.has("out")) {
    if (!write_address_file(args.get("out"), candidates,
                            generator->name() + " candidates"))
      cli::die("cannot write '" + args.get("out") + "'");
    std::printf("wrote %zu candidates to %s\n", candidates.size(),
                args.get("out").c_str());
  }
  if (args.has("metrics-out")) {
    write_file_or_die(args.get("metrics-out"), metrics.snapshot().to_json());
    std::printf("metrics written to %s\n", args.get("metrics-out").c_str());
  }
  return 0;
}
