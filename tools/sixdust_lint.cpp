// sixdust-lint — contract-enforcing static analysis over the sixdust
// sources. The determinism, observability, and concurrency contracts of
// DESIGN.md (stable outputs byte-identical at any thread count, serve.*
// telemetry volatile, RAII/explicit-order concurrency discipline) are
// checked token-by-token on every build instead of only after the fact by
// the differential tests. Violations are either fixed or carry an
// explicit `// sixdust-lint: allow(rule) — reason` annotation, so the
// repo self-lints clean. See DESIGN.md §14.
//
// Exit status: 0 = clean, 1 = blocking findings (with --strict: any
// unannotated error, including manifest coverage gaps), 2 = usage or I/O
// error.

#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "lint/lint.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-lint — static contract checks for the sixdust sources

usage: sixdust-lint [options] [subdir...]
  subdirs are lint roots relative to --root (default: src tools tests).

  --root DIR       repository root to lint               (default .)
  --strict         exit 1 on any unannotated error finding
  --json FILE      write the sixdust-lint/1 findings + manifest document
  --golden FILE    stable-metrics golden the manifest must cover
                   (default tests/golden/metrics_12scan.json under
                   --root; pass --golden off to skip the coverage check)
  --show-allowed   also print findings suppressed by allow annotations
  --list-rules     print the rule table and exit
  --help

exit status: 0 clean, 1 findings, 2 usage/IO error
)";

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

void print_finding(const lint::Finding& f) {
  std::printf("%s:%zu: %s [%s]%s%s\n", f.file.c_str(), f.line,
              f.message.c_str(), f.rule.c_str(),
              f.allowed ? " (allowed: " : "",
              f.allowed ? (f.reason + ")").c_str() : "");
  if (!f.allowed && !f.fixit.empty())
    std::printf("    fix: %s\n", f.fixit.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  if (args.has("list-rules")) {
    for (const lint::RuleInfo& info : lint::rule_table())
      std::printf("%-20s %-7s %s\n", std::string(info.id).c_str(),
                  std::string(lint::severity_name(info.severity)).c_str(),
                  std::string(info.summary).c_str());
    return 0;
  }

  const std::string root = args.get("root", ".");
  std::vector<std::string> subdirs = args.positional();
  if (subdirs.empty()) subdirs = {"src", "tools", "tests"};

  std::vector<lint::SourceFile> files;
  std::string error;
  if (!lint::load_tree(root, subdirs, &files, &error)) fail(error);

  lint::LintResult result = lint::run_lint(files);

  std::string golden = args.get("golden", "");
  if (golden.empty()) golden = root + "/tests/golden/metrics_12scan.json";
  if (golden != "off") {
    std::ifstream g(golden);
    if (!g) fail("cannot read golden '" + golden + "' (--golden off to skip)");
    std::ostringstream buf;
    buf << g.rdbuf();
    for (lint::Finding& f :
         lint::check_manifest_coverage(result.manifest, buf.str(), golden))
      result.findings.push_back(std::move(f));
  }

  const std::string json_out = args.get("json", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << lint::result_to_json(result);
    if (!out.good()) fail("cannot write '" + json_out + "'");
  }

  const bool show_allowed = args.has("show-allowed");
  for (const lint::Finding& f : result.findings)
    if (!f.allowed || show_allowed) print_finding(f);

  const std::size_t errors = result.count(lint::Severity::kError, false);
  const std::size_t warnings = result.count(lint::Severity::kWarning, false);
  const std::size_t allowed = result.count(lint::Severity::kError, true) +
                              result.count(lint::Severity::kWarning, true);
  std::printf(
      "sixdust-lint: %zu files, %zu errors, %zu warnings, %zu allowed\n",
      result.files, errors, warnings, allowed);

  if (errors > 0 && args.has("strict")) return 1;
  return 0;
}
