#!/usr/bin/env sh
# Regenerate tests/golden/metrics_12scan.json from the current code.
#
# The golden file is the stable-only JSON snapshot of the service metrics
# after a 12-scan run on the seed-42 test world (see DESIGN.md §9). Run
# this after an intentional change to the simulation or to the metrics
# surface, then commit the refreshed golden file together with the change.
#
# usage: tools/update-golden-metrics.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
test_bin="$build_dir/tests/sixdust_obs_tests"

if [ ! -x "$test_bin" ]; then
  echo "error: $test_bin not found — build first:" >&2
  echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
  exit 1
fi

SIXDUST_UPDATE_GOLDEN=1 "$test_bin" --gtest_filter='ObsGoldenMetrics.*'
echo "regenerated: $repo_root/tests/golden/metrics_12scan.json"

# Immediately verify the refreshed golden round-trips.
"$test_bin" --gtest_filter='ObsGoldenMetrics.*'
