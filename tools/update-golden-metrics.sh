#!/usr/bin/env sh
# Regenerate the golden observability files from the current code:
#   tests/golden/metrics_12scan.json  (stable metrics snapshot)
#   tests/golden/trace_12scan.jsonl   (stable span stream)
#
# Both are the stable-only exports of a 12-scan service run on the seed-42
# test world (see DESIGN.md §9/§10). Run this after an intentional change
# to the simulation, the metrics surface, or the span surface, then commit
# the refreshed golden files together with the change.
#
# usage: tools/update-golden-metrics.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
obs_bin="$build_dir/tests/sixdust_obs_tests"
trace_bin="$build_dir/tests/sixdust_trace_tests"

for bin in "$obs_bin" "$trace_bin"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found — build first:" >&2
    echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
    exit 1
  fi
done

SIXDUST_UPDATE_GOLDEN=1 "$obs_bin" --gtest_filter='ObsGoldenMetrics.*'
echo "regenerated: $repo_root/tests/golden/metrics_12scan.json"

SIXDUST_UPDATE_GOLDEN=1 "$trace_bin" --gtest_filter='TraceGolden.*'
echo "regenerated: $repo_root/tests/golden/trace_12scan.jsonl"

# Immediately verify the refreshed goldens round-trip.
"$obs_bin" --gtest_filter='ObsGoldenMetrics.*'
"$trace_bin" --gtest_filter='TraceGolden.*'
