// sixdust-scan: ZMapv6-style scan of an address list against a simulated
// world. Reads targets from a file (or generates them from the world's
// public sources), writes the responsive list, and reports per-protocol
// statistics — a command-line face for scanner::Zmap6.

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include <fstream>

#include "cli.hpp"
#include "netbase/addrio.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scanner/zmap6.hpp"
#include "topo/world_builder.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-scan — scan targets in a simulated IPv6 Internet

usage: sixdust-scan [options]
  --targets FILE     address list to scan (default: the world's public
                     candidates)
  --proto NAME       icmp | tcp80 | tcp443 | udp53 | udp443 | all (default)
  --scan N           scan date index 0..45 (default 45)
  --world-seed N     world seed (default 42)
  --world-scale X    world scale (default 0.1 = test world)
  --loss P           probe loss probability (default 0.01)
  --retries N        retransmissions (default 1)
  --threads N        scanner threads, 0 = all cores (default 1; output is
                     identical for every value)
  --blocklist FILE   prefix list to exclude
  --out FILE         write responsive addresses (proto=all: any protocol)
  --metrics-out FILE write the run-telemetry snapshot as JSON
  --trace-out FILE   write a Chrome trace-event file of the run (open in
                     Perfetto / chrome://tracing)
  --log-level LEVEL  debug | info | warn (default) | error | off
  --help
)";

/// Write `content` to `path`; any open/write failure is a hard error —
/// telemetry silently going missing defeats its purpose.
void write_file_or_die(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) cli::die("cannot open '" + path + "' for writing");
  f << content;
  f.flush();
  if (!f.good()) cli::die("cannot write '" + path + "'");
}

std::optional<Proto> parse_proto(const std::string& name) {
  if (name == "icmp") return Proto::Icmp;
  if (name == "tcp80") return Proto::Tcp80;
  if (name == "tcp443") return Proto::Tcp443;
  if (name == "udp53") return Proto::Udp53;
  if (name == "udp443") return Proto::Udp443;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);

  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level"));
    if (!level) cli::die("unknown log level '" + args.get("log-level") + "'");
    Logger::global().set_level(*level);
  }

  WorldConfig wc;
  wc.seed = args.get_u64("world-seed", 42);
  wc.scale = args.get_double("world-scale", 0.1);
  wc.tail_as_count = static_cast<int>(args.get_u64("tail-ases", 200));
  const auto world = build_world(wc);
  const ScanDate date{static_cast<int>(args.get_u64("scan", 45))};

  std::vector<Ipv6> targets;
  if (args.has("targets")) {
    std::size_t bad_line = 0;
    auto loaded = read_address_file(args.get("targets"), &bad_line);
    if (!loaded)
      cli::die("cannot read targets from '" + args.get("targets") +
               "' (line " + std::to_string(bad_line) + ")");
    targets = std::move(*loaded);
  } else {
    std::vector<KnownAddress> known;
    world->enumerate_known(date, known);
    targets.reserve(known.size());
    for (const auto& k : known) targets.push_back(k.addr);
  }
  std::printf("targets: %zu, date %s\n", targets.size(), date.str().c_str());

  PrefixSet blocklist;
  if (args.has("blocklist")) {
    auto prefixes = read_prefix_file(args.get("blocklist"));
    if (!prefixes) cli::die("cannot read blocklist");
    for (const auto& p : *prefixes) blocklist.add(p);
  }

  MetricsRegistry metrics;
  std::optional<TraceRecorder> tracer;
  if (args.has("trace-out")) {
    tracer.emplace();
    metrics.set_tracer(&*tracer);
  }
  Zmap6::Config zc;
  zc.loss = args.get_double("loss", 0.01);
  zc.retries = static_cast<int>(args.get_u64("retries", 1));
  zc.threads = static_cast<unsigned>(args.get_u64("threads", 1));
  zc.blocklist = &blocklist;
  zc.metrics = &metrics;
  Zmap6 zmap(zc);

  std::vector<Proto> protos;
  const std::string proto_arg = args.get("proto", "all");
  if (proto_arg == "all") {
    protos.assign(kAllProtos.begin(), kAllProtos.end());
  } else {
    auto p = parse_proto(proto_arg);
    if (!p) cli::die("unknown protocol '" + proto_arg + "'");
    protos.push_back(*p);
  }

  std::unordered_set<Ipv6, Ipv6Hasher> responsive_any;
  for (Proto p : protos) {
    const auto result = zmap.scan(*world, targets, p, date);
    std::printf("%-8s probes=%llu blocked=%llu responsive=%zu (%.1f %%)\n",
                proto_name(p).c_str(),
                static_cast<unsigned long long>(result.probes_sent),
                static_cast<unsigned long long>(result.blocked),
                result.responsive.size(),
                targets.empty() ? 0.0
                                : 100.0 * static_cast<double>(result.responsive.size()) /
                                      static_cast<double>(targets.size()));
    for (const auto& rec : result.responsive) responsive_any.insert(rec.target);
    // Sequential point between protocol scans: move the simulated
    // timeline past the scan just consumed (same pacing the service
    // applies), so successive scan spans do not overlap.
    if (tracer) tracer->sim_advance_seconds(result.duration_seconds);
  }
  std::printf("responsive to >=1 protocol: %zu\n", responsive_any.size());

  if (args.has("out")) {
    std::vector<Ipv6> out(responsive_any.begin(), responsive_any.end());
    std::sort(out.begin(), out.end());
    if (!write_address_file(args.get("out"), out, "sixdust-scan responsive"))
      cli::die("cannot write '" + args.get("out") + "'");
    std::printf("wrote %zu addresses to %s\n", out.size(),
                args.get("out").c_str());
  }

  if (args.has("metrics-out")) {
    write_file_or_die(args.get("metrics-out"), metrics.snapshot().to_json());
    std::printf("metrics written to %s\n", args.get("metrics-out").c_str());
  }

  if (tracer) {
    metrics.set_tracer(nullptr);
    write_file_or_die(args.get("trace-out"), tracer->chrome_json());
    std::printf("trace written to %s\n", args.get("trace-out").c_str());
  }
  return 0;
}
