// sixdust-diff: compare two published service archives — the maintenance
// view this paper itself takes on the 2018-vs-2022 hitlist.

#include <cstdio>

#include "cli.hpp"
#include "hitlist/archive.hpp"
#include "hitlist/compare.hpp"
#include "topo/world_builder.hpp"

using namespace sixdust;

namespace {

constexpr const char* kUsage = R"(sixdust-diff — compare two service archives

usage: sixdust-diff BEFORE.bin AFTER.bin [options]
  --fingerprint N    archive fingerprint both files were saved with
                     (sixdust-hitlist prints it; default 0)
  --world-seed N     world seed for AS attribution (default 42)
  --world-scale X    world scale (default 0.1)
  --help
)";

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  args.usage_on_help(kUsage);
  if (args.positional().size() != 2) cli::die("expected BEFORE.bin AFTER.bin");

  const auto fp = args.get_u64("fingerprint", 0);
  HitlistService::Config cfg;
  auto before = ServiceArchive::load(cfg, fp, args.positional()[0]);
  if (!before) cli::die("cannot load '" + args.positional()[0] + "'");
  auto after = ServiceArchive::load(cfg, fp, args.positional()[1]);
  if (!after) cli::die("cannot load '" + args.positional()[1] + "'");

  WorldConfig wc;
  wc.seed = args.get_u64("world-seed", 42);
  wc.scale = args.get_double("world-scale", 0.1);
  wc.tail_as_count = static_cast<int>(args.get_u64("tail-ases", 200));
  const auto world = build_world(wc);

  const auto diff = diff_services(*before, *after, world->rib());
  std::fputs(diff.summary(world->registry()).c_str(), stdout);
  return 0;
}
