# Empty dependencies file for bench_ext_generators.
# This may be replaced when dependencies are built.
