file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_generators.dir/bench/bench_ext_generators.cpp.o"
  "CMakeFiles/bench_ext_generators.dir/bench/bench_ext_generators.cpp.o.d"
  "CMakeFiles/bench_ext_generators.dir/bench/support.cpp.o"
  "CMakeFiles/bench_ext_generators.dir/bench/support.cpp.o.d"
  "bench/bench_ext_generators"
  "bench/bench_ext_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
