file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_alias_sizes.dir/bench/bench_fig5_alias_sizes.cpp.o"
  "CMakeFiles/bench_fig5_alias_sizes.dir/bench/bench_fig5_alias_sizes.cpp.o.d"
  "CMakeFiles/bench_fig5_alias_sizes.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig5_alias_sizes.dir/bench/support.cpp.o.d"
  "bench/bench_fig5_alias_sizes"
  "bench/bench_fig5_alias_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_alias_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
