# Empty dependencies file for bench_fig5_alias_sizes.
# This may be replaced when dependencies are built.
