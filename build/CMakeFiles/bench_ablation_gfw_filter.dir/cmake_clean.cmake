file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gfw_filter.dir/bench/bench_ablation_gfw_filter.cpp.o"
  "CMakeFiles/bench_ablation_gfw_filter.dir/bench/bench_ablation_gfw_filter.cpp.o.d"
  "CMakeFiles/bench_ablation_gfw_filter.dir/bench/support.cpp.o"
  "CMakeFiles/bench_ablation_gfw_filter.dir/bench/support.cpp.o.d"
  "bench/bench_ablation_gfw_filter"
  "bench/bench_ablation_gfw_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gfw_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
