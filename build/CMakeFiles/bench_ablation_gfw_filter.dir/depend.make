# Empty dependencies file for bench_ablation_gfw_filter.
# This may be replaced when dependencies are built.
