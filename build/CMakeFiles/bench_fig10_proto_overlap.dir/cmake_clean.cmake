file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_proto_overlap.dir/bench/bench_fig10_proto_overlap.cpp.o"
  "CMakeFiles/bench_fig10_proto_overlap.dir/bench/bench_fig10_proto_overlap.cpp.o.d"
  "CMakeFiles/bench_fig10_proto_overlap.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig10_proto_overlap.dir/bench/support.cpp.o.d"
  "bench/bench_fig10_proto_overlap"
  "bench/bench_fig10_proto_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_proto_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
