file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_new_responsive.dir/bench/bench_table4_new_responsive.cpp.o"
  "CMakeFiles/bench_table4_new_responsive.dir/bench/bench_table4_new_responsive.cpp.o.d"
  "CMakeFiles/bench_table4_new_responsive.dir/bench/support.cpp.o"
  "CMakeFiles/bench_table4_new_responsive.dir/bench/support.cpp.o.d"
  "bench/bench_table4_new_responsive"
  "bench/bench_table4_new_responsive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_new_responsive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
