# Empty compiler generated dependencies file for bench_table4_new_responsive.
# This may be replaced when dependencies are built.
