file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_timeline.dir/bench/bench_fig3_timeline.cpp.o"
  "CMakeFiles/bench_fig3_timeline.dir/bench/bench_fig3_timeline.cpp.o.d"
  "CMakeFiles/bench_fig3_timeline.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig3_timeline.dir/bench/support.cpp.o.d"
  "bench/bench_fig3_timeline"
  "bench/bench_fig3_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
