file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_protocols.dir/bench/bench_table1_protocols.cpp.o"
  "CMakeFiles/bench_table1_protocols.dir/bench/bench_table1_protocols.cpp.o.d"
  "CMakeFiles/bench_table1_protocols.dir/bench/support.cpp.o"
  "CMakeFiles/bench_table1_protocols.dir/bench/support.cpp.o.d"
  "bench/bench_table1_protocols"
  "bench/bench_table1_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
