# Empty compiler generated dependencies file for bench_ablation_apd.
# This may be replaced when dependencies are built.
