file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_apd.dir/bench/bench_ablation_apd.cpp.o"
  "CMakeFiles/bench_ablation_apd.dir/bench/bench_ablation_apd.cpp.o.d"
  "CMakeFiles/bench_ablation_apd.dir/bench/support.cpp.o"
  "CMakeFiles/bench_ablation_apd.dir/bench/support.cpp.o.d"
  "bench/bench_ablation_apd"
  "bench/bench_ablation_apd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_apd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
