# Empty compiler generated dependencies file for bench_ablation_unresponsive.
# This may be replaced when dependencies are built.
