file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unresponsive.dir/bench/bench_ablation_unresponsive.cpp.o"
  "CMakeFiles/bench_ablation_unresponsive.dir/bench/bench_ablation_unresponsive.cpp.o.d"
  "CMakeFiles/bench_ablation_unresponsive.dir/bench/support.cpp.o"
  "CMakeFiles/bench_ablation_unresponsive.dir/bench/support.cpp.o.d"
  "bench/bench_ablation_unresponsive"
  "bench/bench_ablation_unresponsive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unresponsive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
