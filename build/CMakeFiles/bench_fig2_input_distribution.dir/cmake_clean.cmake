file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_input_distribution.dir/bench/bench_fig2_input_distribution.cpp.o"
  "CMakeFiles/bench_fig2_input_distribution.dir/bench/bench_fig2_input_distribution.cpp.o.d"
  "CMakeFiles/bench_fig2_input_distribution.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig2_input_distribution.dir/bench/support.cpp.o.d"
  "bench/bench_fig2_input_distribution"
  "bench/bench_fig2_input_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_input_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
