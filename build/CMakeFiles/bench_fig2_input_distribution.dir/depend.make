# Empty dependencies file for bench_fig2_input_distribution.
# This may be replaced when dependencies are built.
