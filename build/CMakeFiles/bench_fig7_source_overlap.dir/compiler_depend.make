# Empty compiler generated dependencies file for bench_fig7_source_overlap.
# This may be replaced when dependencies are built.
