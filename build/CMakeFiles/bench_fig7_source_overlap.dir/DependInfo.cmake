
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_source_overlap.cpp" "CMakeFiles/bench_fig7_source_overlap.dir/bench/bench_fig7_source_overlap.cpp.o" "gcc" "CMakeFiles/bench_fig7_source_overlap.dir/bench/bench_fig7_source_overlap.cpp.o.d"
  "/root/repo/bench/support.cpp" "CMakeFiles/bench_fig7_source_overlap.dir/bench/support.cpp.o" "gcc" "CMakeFiles/bench_fig7_source_overlap.dir/bench/support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hitlist/CMakeFiles/sixdust_hitlist.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/sixdust_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sixdust_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/alias/CMakeFiles/sixdust_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/gfw/CMakeFiles/sixdust_gfw.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/sixdust_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/sixdust_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sixdust_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/tga/CMakeFiles/sixdust_tga.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sixdust_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
