file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_churn.dir/bench/bench_fig4_churn.cpp.o"
  "CMakeFiles/bench_fig4_churn.dir/bench/bench_fig4_churn.cpp.o.d"
  "CMakeFiles/bench_fig4_churn.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig4_churn.dir/bench/support.cpp.o.d"
  "bench/bench_fig4_churn"
  "bench/bench_fig4_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
