# Empty dependencies file for bench_fig4_churn.
# This may be replaced when dependencies are built.
