file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_new_sources.dir/bench/bench_table3_new_sources.cpp.o"
  "CMakeFiles/bench_table3_new_sources.dir/bench/bench_table3_new_sources.cpp.o.d"
  "CMakeFiles/bench_table3_new_sources.dir/bench/support.cpp.o"
  "CMakeFiles/bench_table3_new_sources.dir/bench/support.cpp.o.d"
  "bench/bench_table3_new_sources"
  "bench/bench_table3_new_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_new_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
