file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_dns_validation.dir/bench/bench_sec42_dns_validation.cpp.o"
  "CMakeFiles/bench_sec42_dns_validation.dir/bench/bench_sec42_dns_validation.cpp.o.d"
  "CMakeFiles/bench_sec42_dns_validation.dir/bench/support.cpp.o"
  "CMakeFiles/bench_sec42_dns_validation.dir/bench/support.cpp.o.d"
  "bench/bench_sec42_dns_validation"
  "bench/bench_sec42_dns_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_dns_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
