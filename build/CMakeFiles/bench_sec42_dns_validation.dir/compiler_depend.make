# Empty compiler generated dependencies file for bench_sec42_dns_validation.
# This may be replaced when dependencies are built.
