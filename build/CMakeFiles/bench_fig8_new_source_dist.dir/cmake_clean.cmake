file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_new_source_dist.dir/bench/bench_fig8_new_source_dist.cpp.o"
  "CMakeFiles/bench_fig8_new_source_dist.dir/bench/bench_fig8_new_source_dist.cpp.o.d"
  "CMakeFiles/bench_fig8_new_source_dist.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig8_new_source_dist.dir/bench/support.cpp.o.d"
  "bench/bench_fig8_new_source_dist"
  "bench/bench_fig8_new_source_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_new_source_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
