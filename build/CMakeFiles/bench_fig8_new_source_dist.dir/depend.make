# Empty dependencies file for bench_fig8_new_source_dist.
# This may be replaced when dependencies are built.
