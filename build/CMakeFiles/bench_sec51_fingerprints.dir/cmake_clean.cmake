file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_fingerprints.dir/bench/bench_sec51_fingerprints.cpp.o"
  "CMakeFiles/bench_sec51_fingerprints.dir/bench/bench_sec51_fingerprints.cpp.o.d"
  "CMakeFiles/bench_sec51_fingerprints.dir/bench/support.cpp.o"
  "CMakeFiles/bench_sec51_fingerprints.dir/bench/support.cpp.o.d"
  "bench/bench_sec51_fingerprints"
  "bench/bench_sec51_fingerprints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_fingerprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
