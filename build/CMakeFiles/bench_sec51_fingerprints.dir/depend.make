# Empty dependencies file for bench_sec51_fingerprints.
# This may be replaced when dependencies are built.
