file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_alias_resp.dir/bench/bench_table2_alias_resp.cpp.o"
  "CMakeFiles/bench_table2_alias_resp.dir/bench/bench_table2_alias_resp.cpp.o.d"
  "CMakeFiles/bench_table2_alias_resp.dir/bench/support.cpp.o"
  "CMakeFiles/bench_table2_alias_resp.dir/bench/support.cpp.o.d"
  "bench/bench_table2_alias_resp"
  "bench/bench_table2_alias_resp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_alias_resp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
