# Empty dependencies file for bench_table2_alias_resp.
# This may be replaced when dependencies are built.
