# Empty compiler generated dependencies file for bench_fig6_alias_fraction.
# This may be replaced when dependencies are built.
