file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_alias_fraction.dir/bench/bench_fig6_alias_fraction.cpp.o"
  "CMakeFiles/bench_fig6_alias_fraction.dir/bench/bench_fig6_alias_fraction.cpp.o.d"
  "CMakeFiles/bench_fig6_alias_fraction.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig6_alias_fraction.dir/bench/support.cpp.o.d"
  "bench/bench_fig6_alias_fraction"
  "bench/bench_fig6_alias_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_alias_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
