# Empty dependencies file for bench_table5_gfw_ases.
# This may be replaced when dependencies are built.
