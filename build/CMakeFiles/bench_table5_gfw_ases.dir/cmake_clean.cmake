file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_gfw_ases.dir/bench/bench_table5_gfw_ases.cpp.o"
  "CMakeFiles/bench_table5_gfw_ases.dir/bench/bench_table5_gfw_ases.cpp.o.d"
  "CMakeFiles/bench_table5_gfw_ases.dir/bench/support.cpp.o"
  "CMakeFiles/bench_table5_gfw_ases.dir/bench/support.cpp.o.d"
  "bench/bench_table5_gfw_ases"
  "bench/bench_table5_gfw_ases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_gfw_ases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
