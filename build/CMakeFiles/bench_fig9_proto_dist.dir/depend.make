# Empty dependencies file for bench_fig9_proto_dist.
# This may be replaced when dependencies are built.
