file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_proto_dist.dir/bench/bench_fig9_proto_dist.cpp.o"
  "CMakeFiles/bench_fig9_proto_dist.dir/bench/bench_fig9_proto_dist.cpp.o.d"
  "CMakeFiles/bench_fig9_proto_dist.dir/bench/support.cpp.o"
  "CMakeFiles/bench_fig9_proto_dist.dir/bench/support.cpp.o.d"
  "bench/bench_fig9_proto_dist"
  "bench/bench_fig9_proto_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_proto_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
