# Empty compiler generated dependencies file for sixdust_tests.
# This may be replaced when dependencies are built.
