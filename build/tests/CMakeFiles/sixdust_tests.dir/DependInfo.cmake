
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_addrio.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_addrio.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_addrio.cpp.o.d"
  "/root/repo/tests/test_alias.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_alias.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_alias.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_archive.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_archive.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_archive.cpp.o.d"
  "/root/repo/tests/test_asdb.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_asdb.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_asdb.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_compare_shard.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_compare_shard.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_compare_shard.cpp.o.d"
  "/root/repo/tests/test_dns.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_dns.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_dns.cpp.o.d"
  "/root/repo/tests/test_entropyip.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_entropyip.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_entropyip.cpp.o.d"
  "/root/repo/tests/test_era_stats.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_era_stats.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_era_stats.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gfw.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_gfw.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_gfw.cpp.o.d"
  "/root/repo/tests/test_hitlist.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_hitlist.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_hitlist.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_netbase.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_netbase.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_netbase.cpp.o.d"
  "/root/repo/tests/test_proto.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_proto.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_proto.cpp.o.d"
  "/root/repo/tests/test_quic_wire.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_quic_wire.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_quic_wire.cpp.o.d"
  "/root/repo/tests/test_rate_limit.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_rate_limit.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_rate_limit.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_scanner.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_scanner.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_scanner.cpp.o.d"
  "/root/repo/tests/test_sixhit_seedless.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_sixhit_seedless.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_sixhit_seedless.cpp.o.d"
  "/root/repo/tests/test_tga.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_tga.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_tga.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_traceroute.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_traceroute.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_traceroute.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_world_invariants.cpp" "tests/CMakeFiles/sixdust_tests.dir/test_world_invariants.cpp.o" "gcc" "tests/CMakeFiles/sixdust_tests.dir/test_world_invariants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hitlist/CMakeFiles/sixdust_hitlist.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/sixdust_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sixdust_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/alias/CMakeFiles/sixdust_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/gfw/CMakeFiles/sixdust_gfw.dir/DependInfo.cmake"
  "/root/repo/build/src/scanner/CMakeFiles/sixdust_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/sixdust_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sixdust_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/tga/CMakeFiles/sixdust_tga.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sixdust_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
