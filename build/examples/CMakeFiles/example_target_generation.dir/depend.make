# Empty dependencies file for example_target_generation.
# This may be replaced when dependencies are built.
