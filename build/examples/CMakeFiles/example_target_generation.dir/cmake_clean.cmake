file(REMOVE_RECURSE
  "CMakeFiles/example_target_generation.dir/target_generation.cpp.o"
  "CMakeFiles/example_target_generation.dir/target_generation.cpp.o.d"
  "target_generation"
  "target_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_target_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
