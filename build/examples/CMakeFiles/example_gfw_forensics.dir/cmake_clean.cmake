file(REMOVE_RECURSE
  "CMakeFiles/example_gfw_forensics.dir/gfw_forensics.cpp.o"
  "CMakeFiles/example_gfw_forensics.dir/gfw_forensics.cpp.o.d"
  "gfw_forensics"
  "gfw_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gfw_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
