# Empty compiler generated dependencies file for example_gfw_forensics.
# This may be replaced when dependencies are built.
