file(REMOVE_RECURSE
  "CMakeFiles/example_alias_survey.dir/alias_survey.cpp.o"
  "CMakeFiles/example_alias_survey.dir/alias_survey.cpp.o.d"
  "alias_survey"
  "alias_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alias_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
