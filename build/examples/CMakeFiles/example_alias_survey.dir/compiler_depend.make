# Empty compiler generated dependencies file for example_alias_survey.
# This may be replaced when dependencies are built.
