# Empty dependencies file for example_dns_validation.
# This may be replaced when dependencies are built.
