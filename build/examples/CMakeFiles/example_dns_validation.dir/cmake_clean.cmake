file(REMOVE_RECURSE
  "CMakeFiles/example_dns_validation.dir/dns_validation.cpp.o"
  "CMakeFiles/example_dns_validation.dir/dns_validation.cpp.o.d"
  "dns_validation"
  "dns_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dns_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
