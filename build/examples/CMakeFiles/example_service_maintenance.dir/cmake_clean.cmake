file(REMOVE_RECURSE
  "CMakeFiles/example_service_maintenance.dir/service_maintenance.cpp.o"
  "CMakeFiles/example_service_maintenance.dir/service_maintenance.cpp.o.d"
  "service_maintenance"
  "service_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_service_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
