# Empty compiler generated dependencies file for example_service_maintenance.
# This may be replaced when dependencies are built.
