# Empty dependencies file for tool_sixdust_apd.
# This may be replaced when dependencies are built.
