file(REMOVE_RECURSE
  "CMakeFiles/tool_sixdust_apd.dir/sixdust_apd.cpp.o"
  "CMakeFiles/tool_sixdust_apd.dir/sixdust_apd.cpp.o.d"
  "sixdust-apd"
  "sixdust-apd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sixdust_apd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
