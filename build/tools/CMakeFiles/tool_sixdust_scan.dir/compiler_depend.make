# Empty compiler generated dependencies file for tool_sixdust_scan.
# This may be replaced when dependencies are built.
