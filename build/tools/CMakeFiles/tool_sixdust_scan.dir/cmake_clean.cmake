file(REMOVE_RECURSE
  "CMakeFiles/tool_sixdust_scan.dir/sixdust_scan.cpp.o"
  "CMakeFiles/tool_sixdust_scan.dir/sixdust_scan.cpp.o.d"
  "sixdust-scan"
  "sixdust-scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sixdust_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
