# Empty dependencies file for tool_sixdust_hitlist.
# This may be replaced when dependencies are built.
