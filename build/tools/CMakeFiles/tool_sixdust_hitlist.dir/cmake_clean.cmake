file(REMOVE_RECURSE
  "CMakeFiles/tool_sixdust_hitlist.dir/sixdust_hitlist.cpp.o"
  "CMakeFiles/tool_sixdust_hitlist.dir/sixdust_hitlist.cpp.o.d"
  "sixdust-hitlist"
  "sixdust-hitlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sixdust_hitlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
