# Empty dependencies file for tool_sixdust_diff.
# This may be replaced when dependencies are built.
