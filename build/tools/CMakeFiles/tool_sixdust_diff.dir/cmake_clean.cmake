file(REMOVE_RECURSE
  "CMakeFiles/tool_sixdust_diff.dir/sixdust_diff.cpp.o"
  "CMakeFiles/tool_sixdust_diff.dir/sixdust_diff.cpp.o.d"
  "sixdust-diff"
  "sixdust-diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sixdust_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
