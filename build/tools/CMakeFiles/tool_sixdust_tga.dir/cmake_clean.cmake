file(REMOVE_RECURSE
  "CMakeFiles/tool_sixdust_tga.dir/sixdust_tga.cpp.o"
  "CMakeFiles/tool_sixdust_tga.dir/sixdust_tga.cpp.o.d"
  "sixdust-tga"
  "sixdust-tga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_sixdust_tga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
