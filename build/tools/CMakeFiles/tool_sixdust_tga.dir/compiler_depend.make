# Empty compiler generated dependencies file for tool_sixdust_tga.
# This may be replaced when dependencies are built.
