# Empty compiler generated dependencies file for sixdust_alias.
# This may be replaced when dependencies are built.
