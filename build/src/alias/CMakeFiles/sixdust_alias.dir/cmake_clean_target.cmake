file(REMOVE_RECURSE
  "libsixdust_alias.a"
)
