file(REMOVE_RECURSE
  "CMakeFiles/sixdust_alias.dir/apd.cpp.o"
  "CMakeFiles/sixdust_alias.dir/apd.cpp.o.d"
  "CMakeFiles/sixdust_alias.dir/tbt.cpp.o"
  "CMakeFiles/sixdust_alias.dir/tbt.cpp.o.d"
  "CMakeFiles/sixdust_alias.dir/tcp_fp.cpp.o"
  "CMakeFiles/sixdust_alias.dir/tcp_fp.cpp.o.d"
  "libsixdust_alias.a"
  "libsixdust_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
