# Empty dependencies file for sixdust_dns.
# This may be replaced when dependencies are built.
