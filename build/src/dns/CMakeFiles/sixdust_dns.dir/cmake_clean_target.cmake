file(REMOVE_RECURSE
  "libsixdust_dns.a"
)
