file(REMOVE_RECURSE
  "CMakeFiles/sixdust_dns.dir/zonedb.cpp.o"
  "CMakeFiles/sixdust_dns.dir/zonedb.cpp.o.d"
  "libsixdust_dns.a"
  "libsixdust_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
