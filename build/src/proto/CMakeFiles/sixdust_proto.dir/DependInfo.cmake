
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/dns.cpp" "src/proto/CMakeFiles/sixdust_proto.dir/dns.cpp.o" "gcc" "src/proto/CMakeFiles/sixdust_proto.dir/dns.cpp.o.d"
  "/root/repo/src/proto/quic_wire.cpp" "src/proto/CMakeFiles/sixdust_proto.dir/quic_wire.cpp.o" "gcc" "src/proto/CMakeFiles/sixdust_proto.dir/quic_wire.cpp.o.d"
  "/root/repo/src/proto/tcp.cpp" "src/proto/CMakeFiles/sixdust_proto.dir/tcp.cpp.o" "gcc" "src/proto/CMakeFiles/sixdust_proto.dir/tcp.cpp.o.d"
  "/root/repo/src/proto/wire.cpp" "src/proto/CMakeFiles/sixdust_proto.dir/wire.cpp.o" "gcc" "src/proto/CMakeFiles/sixdust_proto.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
