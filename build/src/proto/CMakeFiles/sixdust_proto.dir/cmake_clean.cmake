file(REMOVE_RECURSE
  "CMakeFiles/sixdust_proto.dir/dns.cpp.o"
  "CMakeFiles/sixdust_proto.dir/dns.cpp.o.d"
  "CMakeFiles/sixdust_proto.dir/quic_wire.cpp.o"
  "CMakeFiles/sixdust_proto.dir/quic_wire.cpp.o.d"
  "CMakeFiles/sixdust_proto.dir/tcp.cpp.o"
  "CMakeFiles/sixdust_proto.dir/tcp.cpp.o.d"
  "CMakeFiles/sixdust_proto.dir/wire.cpp.o"
  "CMakeFiles/sixdust_proto.dir/wire.cpp.o.d"
  "libsixdust_proto.a"
  "libsixdust_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
