# Empty compiler generated dependencies file for sixdust_proto.
# This may be replaced when dependencies are built.
