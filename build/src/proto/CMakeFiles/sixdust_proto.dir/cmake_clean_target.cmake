file(REMOVE_RECURSE
  "libsixdust_proto.a"
)
