# Empty dependencies file for sixdust_netbase.
# This may be replaced when dependencies are built.
