file(REMOVE_RECURSE
  "CMakeFiles/sixdust_netbase.dir/addrio.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/addrio.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/eui64.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/eui64.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/ipv6.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/ipv6.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/prefix.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/prefix.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/prefix_set.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/prefix_set.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/rng.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/rng.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/teredo.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/teredo.cpp.o.d"
  "CMakeFiles/sixdust_netbase.dir/util.cpp.o"
  "CMakeFiles/sixdust_netbase.dir/util.cpp.o.d"
  "libsixdust_netbase.a"
  "libsixdust_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
