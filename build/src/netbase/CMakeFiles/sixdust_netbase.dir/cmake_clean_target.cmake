file(REMOVE_RECURSE
  "libsixdust_netbase.a"
)
