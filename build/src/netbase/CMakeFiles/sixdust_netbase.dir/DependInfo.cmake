
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netbase/addrio.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/addrio.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/addrio.cpp.o.d"
  "/root/repo/src/netbase/eui64.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/eui64.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/eui64.cpp.o.d"
  "/root/repo/src/netbase/ipv6.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/ipv6.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/ipv6.cpp.o.d"
  "/root/repo/src/netbase/prefix.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/prefix.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/prefix.cpp.o.d"
  "/root/repo/src/netbase/prefix_set.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/prefix_set.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/prefix_set.cpp.o.d"
  "/root/repo/src/netbase/rng.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/rng.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/rng.cpp.o.d"
  "/root/repo/src/netbase/teredo.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/teredo.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/teredo.cpp.o.d"
  "/root/repo/src/netbase/util.cpp" "src/netbase/CMakeFiles/sixdust_netbase.dir/util.cpp.o" "gcc" "src/netbase/CMakeFiles/sixdust_netbase.dir/util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
