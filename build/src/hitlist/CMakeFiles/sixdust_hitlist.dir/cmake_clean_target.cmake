file(REMOVE_RECURSE
  "libsixdust_hitlist.a"
)
