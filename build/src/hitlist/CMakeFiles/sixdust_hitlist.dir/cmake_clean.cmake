file(REMOVE_RECURSE
  "CMakeFiles/sixdust_hitlist.dir/archive.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/archive.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/compare.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/compare.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/discovery.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/discovery.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/history.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/history.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/input_db.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/input_db.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/report_gen.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/report_gen.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/service.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/service.cpp.o.d"
  "CMakeFiles/sixdust_hitlist.dir/sources.cpp.o"
  "CMakeFiles/sixdust_hitlist.dir/sources.cpp.o.d"
  "libsixdust_hitlist.a"
  "libsixdust_hitlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_hitlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
