
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hitlist/archive.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/archive.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/archive.cpp.o.d"
  "/root/repo/src/hitlist/compare.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/compare.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/compare.cpp.o.d"
  "/root/repo/src/hitlist/discovery.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/discovery.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/discovery.cpp.o.d"
  "/root/repo/src/hitlist/history.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/history.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/history.cpp.o.d"
  "/root/repo/src/hitlist/input_db.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/input_db.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/input_db.cpp.o.d"
  "/root/repo/src/hitlist/report_gen.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/report_gen.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/report_gen.cpp.o.d"
  "/root/repo/src/hitlist/service.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/service.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/service.cpp.o.d"
  "/root/repo/src/hitlist/sources.cpp" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/sources.cpp.o" "gcc" "src/hitlist/CMakeFiles/sixdust_hitlist.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scanner/CMakeFiles/sixdust_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/traceroute/CMakeFiles/sixdust_traceroute.dir/DependInfo.cmake"
  "/root/repo/build/src/alias/CMakeFiles/sixdust_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/gfw/CMakeFiles/sixdust_gfw.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/sixdust_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/tga/CMakeFiles/sixdust_tga.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sixdust_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/sixdust_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sixdust_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
