# Empty compiler generated dependencies file for sixdust_hitlist.
# This may be replaced when dependencies are built.
