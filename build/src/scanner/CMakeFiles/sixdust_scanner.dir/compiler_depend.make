# Empty compiler generated dependencies file for sixdust_scanner.
# This may be replaced when dependencies are built.
