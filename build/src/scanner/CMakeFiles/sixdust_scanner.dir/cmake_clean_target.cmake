file(REMOVE_RECURSE
  "libsixdust_scanner.a"
)
