file(REMOVE_RECURSE
  "CMakeFiles/sixdust_scanner.dir/cyclic.cpp.o"
  "CMakeFiles/sixdust_scanner.dir/cyclic.cpp.o.d"
  "CMakeFiles/sixdust_scanner.dir/rate_limit.cpp.o"
  "CMakeFiles/sixdust_scanner.dir/rate_limit.cpp.o.d"
  "CMakeFiles/sixdust_scanner.dir/zmap6.cpp.o"
  "CMakeFiles/sixdust_scanner.dir/zmap6.cpp.o.d"
  "libsixdust_scanner.a"
  "libsixdust_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
