file(REMOVE_RECURSE
  "CMakeFiles/sixdust_asdb.dir/geo.cpp.o"
  "CMakeFiles/sixdust_asdb.dir/geo.cpp.o.d"
  "CMakeFiles/sixdust_asdb.dir/registry.cpp.o"
  "CMakeFiles/sixdust_asdb.dir/registry.cpp.o.d"
  "CMakeFiles/sixdust_asdb.dir/rib.cpp.o"
  "CMakeFiles/sixdust_asdb.dir/rib.cpp.o.d"
  "libsixdust_asdb.a"
  "libsixdust_asdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_asdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
