# Empty dependencies file for sixdust_asdb.
# This may be replaced when dependencies are built.
