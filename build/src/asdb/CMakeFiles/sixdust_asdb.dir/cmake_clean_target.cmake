file(REMOVE_RECURSE
  "libsixdust_asdb.a"
)
