file(REMOVE_RECURSE
  "CMakeFiles/sixdust_tga.dir/distance_clustering.cpp.o"
  "CMakeFiles/sixdust_tga.dir/distance_clustering.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/entropyip.cpp.o"
  "CMakeFiles/sixdust_tga.dir/entropyip.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/seedless.cpp.o"
  "CMakeFiles/sixdust_tga.dir/seedless.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/sixgan.cpp.o"
  "CMakeFiles/sixdust_tga.dir/sixgan.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/sixgraph.cpp.o"
  "CMakeFiles/sixdust_tga.dir/sixgraph.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/sixhit.cpp.o"
  "CMakeFiles/sixdust_tga.dir/sixhit.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/sixtree.cpp.o"
  "CMakeFiles/sixdust_tga.dir/sixtree.cpp.o.d"
  "CMakeFiles/sixdust_tga.dir/sixveclm.cpp.o"
  "CMakeFiles/sixdust_tga.dir/sixveclm.cpp.o.d"
  "libsixdust_tga.a"
  "libsixdust_tga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_tga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
