# Empty compiler generated dependencies file for sixdust_tga.
# This may be replaced when dependencies are built.
