
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tga/distance_clustering.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/distance_clustering.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/distance_clustering.cpp.o.d"
  "/root/repo/src/tga/entropyip.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/entropyip.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/entropyip.cpp.o.d"
  "/root/repo/src/tga/seedless.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/seedless.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/seedless.cpp.o.d"
  "/root/repo/src/tga/sixgan.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/sixgan.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/sixgan.cpp.o.d"
  "/root/repo/src/tga/sixgraph.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/sixgraph.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/sixgraph.cpp.o.d"
  "/root/repo/src/tga/sixhit.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/sixhit.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/sixhit.cpp.o.d"
  "/root/repo/src/tga/sixtree.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/sixtree.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/sixtree.cpp.o.d"
  "/root/repo/src/tga/sixveclm.cpp" "src/tga/CMakeFiles/sixdust_tga.dir/sixveclm.cpp.o" "gcc" "src/tga/CMakeFiles/sixdust_tga.dir/sixveclm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
