file(REMOVE_RECURSE
  "libsixdust_tga.a"
)
