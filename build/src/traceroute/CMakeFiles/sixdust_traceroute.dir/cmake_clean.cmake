file(REMOVE_RECURSE
  "CMakeFiles/sixdust_traceroute.dir/yarrp.cpp.o"
  "CMakeFiles/sixdust_traceroute.dir/yarrp.cpp.o.d"
  "libsixdust_traceroute.a"
  "libsixdust_traceroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
