file(REMOVE_RECURSE
  "libsixdust_traceroute.a"
)
