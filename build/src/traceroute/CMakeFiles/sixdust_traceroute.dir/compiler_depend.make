# Empty compiler generated dependencies file for sixdust_traceroute.
# This may be replaced when dependencies are built.
