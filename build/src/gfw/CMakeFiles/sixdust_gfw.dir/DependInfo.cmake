
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gfw/detector.cpp" "src/gfw/CMakeFiles/sixdust_gfw.dir/detector.cpp.o" "gcc" "src/gfw/CMakeFiles/sixdust_gfw.dir/detector.cpp.o.d"
  "/root/repo/src/gfw/era_stats.cpp" "src/gfw/CMakeFiles/sixdust_gfw.dir/era_stats.cpp.o" "gcc" "src/gfw/CMakeFiles/sixdust_gfw.dir/era_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scanner/CMakeFiles/sixdust_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/sixdust_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sixdust_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
