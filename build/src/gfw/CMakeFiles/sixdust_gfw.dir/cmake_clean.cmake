file(REMOVE_RECURSE
  "CMakeFiles/sixdust_gfw.dir/detector.cpp.o"
  "CMakeFiles/sixdust_gfw.dir/detector.cpp.o.d"
  "CMakeFiles/sixdust_gfw.dir/era_stats.cpp.o"
  "CMakeFiles/sixdust_gfw.dir/era_stats.cpp.o.d"
  "libsixdust_gfw.a"
  "libsixdust_gfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_gfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
