file(REMOVE_RECURSE
  "libsixdust_gfw.a"
)
