# Empty dependencies file for sixdust_gfw.
# This may be replaced when dependencies are built.
