file(REMOVE_RECURSE
  "libsixdust_analysis.a"
)
