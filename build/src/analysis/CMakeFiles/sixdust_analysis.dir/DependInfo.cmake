
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/distribution.cpp" "src/analysis/CMakeFiles/sixdust_analysis.dir/distribution.cpp.o" "gcc" "src/analysis/CMakeFiles/sixdust_analysis.dir/distribution.cpp.o.d"
  "/root/repo/src/analysis/eui_stats.cpp" "src/analysis/CMakeFiles/sixdust_analysis.dir/eui_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/sixdust_analysis.dir/eui_stats.cpp.o.d"
  "/root/repo/src/analysis/overlap.cpp" "src/analysis/CMakeFiles/sixdust_analysis.dir/overlap.cpp.o" "gcc" "src/analysis/CMakeFiles/sixdust_analysis.dir/overlap.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/sixdust_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/sixdust_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/sixdust_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/sixdust_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
