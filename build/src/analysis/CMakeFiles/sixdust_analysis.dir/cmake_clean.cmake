file(REMOVE_RECURSE
  "CMakeFiles/sixdust_analysis.dir/distribution.cpp.o"
  "CMakeFiles/sixdust_analysis.dir/distribution.cpp.o.d"
  "CMakeFiles/sixdust_analysis.dir/eui_stats.cpp.o"
  "CMakeFiles/sixdust_analysis.dir/eui_stats.cpp.o.d"
  "CMakeFiles/sixdust_analysis.dir/overlap.cpp.o"
  "CMakeFiles/sixdust_analysis.dir/overlap.cpp.o.d"
  "CMakeFiles/sixdust_analysis.dir/report.cpp.o"
  "CMakeFiles/sixdust_analysis.dir/report.cpp.o.d"
  "CMakeFiles/sixdust_analysis.dir/stats.cpp.o"
  "CMakeFiles/sixdust_analysis.dir/stats.cpp.o.d"
  "libsixdust_analysis.a"
  "libsixdust_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
