# Empty compiler generated dependencies file for sixdust_analysis.
# This may be replaced when dependencies are built.
