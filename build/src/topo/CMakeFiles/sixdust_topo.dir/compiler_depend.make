# Empty compiler generated dependencies file for sixdust_topo.
# This may be replaced when dependencies are built.
