file(REMOVE_RECURSE
  "libsixdust_topo.a"
)
