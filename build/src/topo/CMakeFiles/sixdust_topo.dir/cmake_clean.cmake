file(REMOVE_RECURSE
  "CMakeFiles/sixdust_topo.dir/aliased_region.cpp.o"
  "CMakeFiles/sixdust_topo.dir/aliased_region.cpp.o.d"
  "CMakeFiles/sixdust_topo.dir/censored_network.cpp.o"
  "CMakeFiles/sixdust_topo.dir/censored_network.cpp.o.d"
  "CMakeFiles/sixdust_topo.dir/gfw.cpp.o"
  "CMakeFiles/sixdust_topo.dir/gfw.cpp.o.d"
  "CMakeFiles/sixdust_topo.dir/isp_pool.cpp.o"
  "CMakeFiles/sixdust_topo.dir/isp_pool.cpp.o.d"
  "CMakeFiles/sixdust_topo.dir/server_farm.cpp.o"
  "CMakeFiles/sixdust_topo.dir/server_farm.cpp.o.d"
  "CMakeFiles/sixdust_topo.dir/world.cpp.o"
  "CMakeFiles/sixdust_topo.dir/world.cpp.o.d"
  "CMakeFiles/sixdust_topo.dir/world_builder.cpp.o"
  "CMakeFiles/sixdust_topo.dir/world_builder.cpp.o.d"
  "libsixdust_topo.a"
  "libsixdust_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sixdust_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
