
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/aliased_region.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/aliased_region.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/aliased_region.cpp.o.d"
  "/root/repo/src/topo/censored_network.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/censored_network.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/censored_network.cpp.o.d"
  "/root/repo/src/topo/gfw.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/gfw.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/gfw.cpp.o.d"
  "/root/repo/src/topo/isp_pool.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/isp_pool.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/isp_pool.cpp.o.d"
  "/root/repo/src/topo/server_farm.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/server_farm.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/server_farm.cpp.o.d"
  "/root/repo/src/topo/world.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/world.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/world.cpp.o.d"
  "/root/repo/src/topo/world_builder.cpp" "src/topo/CMakeFiles/sixdust_topo.dir/world_builder.cpp.o" "gcc" "src/topo/CMakeFiles/sixdust_topo.dir/world_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sixdust_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/asdb/CMakeFiles/sixdust_asdb.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sixdust_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
